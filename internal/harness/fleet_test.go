package harness

import (
	"testing"

	"vbench/internal/corpus"
	"vbench/internal/fleet"
)

func TestFleetJobSpecs(t *testing.T) {
	clips := corpus.VBenchClips()
	encs := []string{"x264-medium", "x265-veryslow"}
	specs := FleetJobSpecs(clips, encs, 16, 0.4, 30)
	if len(specs) != len(clips)*len(encs) {
		t.Fatalf("got %d specs, want %d", len(specs), len(clips)*len(encs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Tag, err)
		}
		if seen[s.Tag] {
			t.Errorf("duplicate tag %s", s.Tag)
		}
		seen[s.Tag] = true
		if _, err := fleet.ParseEncoder(s.Encoder); err != nil {
			t.Errorf("spec %s: %v", s.Tag, err)
		}
	}
	if !seen[clips[0].Name+"/x264-medium"] {
		t.Error("expected clip/encoder tags")
	}
}

func TestFleetJobSpecExecutes(t *testing.T) {
	// One grid cell through the real worker execution path.
	specs := FleetJobSpecs(corpus.VBenchClips()[:1], []string{"x264-veryfast"}, 16, 0.2, 30)
	res, err := fleet.Execute(specs[0], 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bytes <= 0 || res.PSNR <= 0 || res.Seconds <= 0 {
		t.Errorf("result = %+v", res)
	}
}
