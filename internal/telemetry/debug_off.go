//go:build vbench_nodebug

package telemetry

import "errors"

// StartDebugServer reports that the binary was built without the debug
// endpoint (-tags vbench_nodebug strips net/http, pprof, and expvar
// from the dependency graph).
func StartDebugServer(addr string) (shutdown func() error, err error) {
	return nil, errors.New("telemetry: debug endpoint disabled (built with -tags vbench_nodebug)")
}
