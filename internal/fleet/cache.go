package fleet

import (
	"fmt"

	"vbench/internal/cas"
)

// SpecCacheKey derives the content-addressed cache key of an encode
// job spec. ok is false for specs that must not be cached or deduped:
// non-encode kinds, fault-injection specs (FailFirst makes execution
// attempt-dependent), and specs whose encoder or rate-control name
// does not parse (those fail terminally at execution time and caching
// the submission-side key would be meaningless).
//
// The clip geometry stands in for pixel content: corpus clips are
// procedurally generated, so (clip, scale, duration) determines the
// input sequence exactly. The key uses the spec's own RowsParallel —
// before any worker-side default is applied — because the submission
// is what the fleet dedups on, and a worker default does not change
// the bitstream (codec.Config documents row parallelism as
// bit-exact).
func SpecCacheKey(spec JobSpec) (cas.Key, bool) {
	if spec.Kind != "" && spec.Kind != KindEncode {
		return cas.Key{}, false
	}
	if spec.FailFirst > 0 {
		return cas.Key{}, false
	}
	eng, err := ParseEncoder(spec.Encoder)
	if err != nil {
		return cas.Key{}, false
	}
	rc, err := parseRC(spec.RC)
	if err != nil {
		return cas.Key{}, false
	}
	parts := cas.KeyParts{
		Content:     fmt.Sprintf("spec:%s/%d/%g", spec.Clip, spec.Scale, spec.Duration),
		Tools:       eng.Tools,
		Config:      specConfig(spec, rc),
		Fingerprint: cas.Fingerprint(),
	}
	return parts.Key(), true
}

// resultFromOutcome converts a cached transcode outcome into the
// fleet's job result shape. Worker and Attempt are left for the
// caller: a cache hit has no executing worker.
func resultFromOutcome(o *cas.Outcome) Result {
	return Result{
		Bytes:      int64(len(o.Bitstream)),
		PSNR:       o.PSNR,
		Seconds:    o.Seconds,
		InputBytes: o.InputBytes,
	}
}
