package kern

import (
	"math/rand"
	"testing"
)

// The reference below is an independent restatement of the transform
// definition (Q10 basis matrices, full matrix multiplies) so the
// butterfly factorization is checked against the mathematical
// definition, not against shared code.

var refDCT4 = [4][4]int64{
	{512, 512, 512, 512},
	{669, 277, -277, -669},
	{512, -512, -512, 512},
	{277, -669, 669, -277},
}

var refDCT8 = [8][8]int64{
	{362, 362, 362, 362, 362, 362, 362, 362},
	{502, 426, 284, 100, -100, -284, -426, -502},
	{473, 196, -196, -473, -473, -196, 196, 473},
	{426, -100, -502, -284, 284, 502, 100, -426},
	{362, -362, -362, 362, 362, -362, -362, 362},
	{284, -502, 100, 426, -426, -100, 502, -284},
	{196, -473, 473, -196, -196, 473, -473, 196},
	{100, -284, 426, -502, 502, -426, 284, -100},
}

func basis(n int) func(k, j int) int64 {
	if n == 4 {
		return func(k, j int) int64 { return refDCT4[k][j] }
	}
	return func(k, j int) int64 { return refDCT8[k][j] }
}

// fwdRef computes round((A·src·Aᵀ) >> fwdShift) by direct matrix multiply.
func fwdRef(src, dst []int32, n int) {
	a := basis(n)
	var tmp [64]int64
	for k := 0; k < n; k++ {
		for col := 0; col < n; col++ {
			var s int64
			for j := 0; j < n; j++ {
				s += a(k, j) * int64(src[j*n+col])
			}
			tmp[k*n+col] = s
		}
	}
	for k := 0; k < n; k++ {
		for l := 0; l < n; l++ {
			var s int64
			for j := 0; j < n; j++ {
				s += tmp[k*n+j] * a(l, j)
			}
			dst[k*n+l] = int32(roundShift(s, fwdShift))
		}
	}
}

// invRef computes round((Aᵀ·src·A) >> invShift) by direct matrix multiply.
func invRef(src, dst []int32, n int) {
	a := basis(n)
	var tmp [64]int64
	for i := 0; i < n; i++ {
		for col := 0; col < n; col++ {
			var s int64
			for k := 0; k < n; k++ {
				s += a(k, i) * int64(src[k*n+col])
			}
			tmp[i*n+col] = s
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s int64
			for l := 0; l < n; l++ {
				s += tmp[i*n+l] * a(l, j)
			}
			dst[i*n+j] = int32(roundShift(s, invShift))
		}
	}
}

// randBlock draws residuals or coefficients spanning the codec's real
// ranges plus extremes: pixel residuals are within ±255, Q3
// coefficients within ~±2¹⁴, and the extreme modes probe headroom.
func randBlock(rng *rand.Rand, nn int, mode int) []int32 {
	blk := make([]int32, nn)
	for i := range blk {
		switch mode {
		case 0:
			blk[i] = int32(rng.Intn(511) - 255)
		case 1:
			blk[i] = int32(rng.Intn(1<<15) - 1<<14)
		default:
			blk[i] = int32([3]int{-(1 << 14), 0, 1 << 14}[rng.Intn(3)])
		}
	}
	return blk
}

func TestDCTCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 8} {
		nn := n * n
		for iter := 0; iter < 3000; iter++ {
			src := randBlock(rng, nn, iter%3)
			want := make([]int32, nn)
			got := make([]int32, nn)

			fwdRef(src, want, n)
			cp := append([]int32(nil), src...)
			if n == 4 {
				FwdDCT4(cp, got)
			} else {
				FwdDCT8(cp, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("FwdDCT%d[%d]: got %d want %d (src=%v)", n, i, got[i], want[i], src)
				}
			}

			invRef(src, want, n)
			if n == 4 {
				InvDCT4(cp, got)
			} else {
				InvDCT8(cp, got)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("InvDCT%d[%d]: got %d want %d (src=%v)", n, i, got[i], want[i], src)
				}
			}
		}
	}
}

// TestDCTAliasing verifies src==dst operation, which quantizeBlock
// relies on for in-place transforms.
func TestDCTAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{4, 8} {
		nn := n * n
		for iter := 0; iter < 200; iter++ {
			src := randBlock(rng, nn, iter%3)
			want := make([]int32, nn)
			fwdRef(src, want, n)
			inplace := append([]int32(nil), src...)
			if n == 4 {
				FwdDCT4(inplace, inplace)
			} else {
				FwdDCT8(inplace, inplace)
			}
			for i := range want {
				if inplace[i] != want[i] {
					t.Fatalf("aliased FwdDCT%d[%d]: got %d want %d", n, i, inplace[i], want[i])
				}
			}
		}
	}
}
