package video

// Deterministic 2D value noise used by the content synthesizer. The
// generator needs smooth, band-limited textures whose spatial
// frequency content can be dialed up and down: low-frequency noise
// compresses extremely well (slideshow-like content), while stacking
// high-frequency octaves produces texture that resists motion
// compensation and drives entropy up, mimicking foliage, crowds, or
// confetti in the paper's high-entropy clips.

// hash2 maps a lattice coordinate and seed to a pseudo-random value in
// [0, 1). It is a 64-bit avalanche mix (same finalizer as SplitMix64)
// so neighbouring lattice points decorrelate completely.
func hash2(x, y int32, seed uint64) float64 {
	h := seed ^ (uint64(uint32(x)) * 0x9E3779B97F4A7C15) ^ (uint64(uint32(y)) * 0xC2B2AE3D27D4EB4F)
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// smoothstep is the cubic Hermite interpolant 3t²−2t³.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise samples smooth noise at (x, y) with the given lattice
// cell size. Output is in [0, 1).
func valueNoise(x, y float64, cell float64, seed uint64) float64 {
	gx := x / cell
	gy := y / cell
	x0 := int32(floor(gx))
	y0 := int32(floor(gy))
	tx := smoothstep(gx - float64(x0))
	ty := smoothstep(gy - float64(y0))
	v00 := hash2(x0, y0, seed)
	v10 := hash2(x0+1, y0, seed)
	v01 := hash2(x0, y0+1, seed)
	v11 := hash2(x0+1, y0+1, seed)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

func floor(x float64) float64 {
	i := float64(int64(x))
	if x < i {
		return i - 1
	}
	return i
}

// fractalNoise stacks octaves of value noise. octaves controls how
// much high-frequency energy is present; persistence weights each
// successive octave. Output is normalized to [0, 1).
func fractalNoise(x, y float64, baseCell float64, octaves int, persistence float64, seed uint64) float64 {
	sum := 0.0
	amp := 1.0
	norm := 0.0
	cell := baseCell
	for o := 0; o < octaves; o++ {
		sum += amp * valueNoise(x, y, cell, seed+uint64(o)*0x9E37)
		norm += amp
		amp *= persistence
		cell *= 0.5
		if cell < 1 {
			break
		}
	}
	if norm == 0 {
		return 0.5
	}
	return sum / norm
}
