package hotalloc_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer)
}
