package spanpair_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/spanpair"
)

func TestSpanpair(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), spanpair.Analyzer)
}
