package codec

import (
	"vbench/internal/perf"
	"vbench/internal/video"
)

// Encoder-side denoising (Section 2.1 of the paper: "Denoising is
// another optional operation that can be applied to increase video
// compressability by reducing high frequency components"). The filter
// is a center-weighted 3×3 smoother applied only where the local
// neighbourhood is flat enough that the deviation is plausibly noise:
// real edges pass through, film grain and sensor noise are attenuated.
// Strength 1 blends 25% of the neighbourhood average into each sample,
// strength 2 blends 50%.

// denoiseFrame returns a filtered copy of the padded source frame
// (luma only; chroma noise is cheap to code and barely affects rate).
func denoiseFrame(f *video.Frame, strength int, c *perf.Counters) *video.Frame {
	if strength <= 0 {
		return f
	}
	blend := 1 // numerator of the neighbourhood weight, /4
	if strength >= 2 {
		blend = 2
	}
	g := f.Clone()
	w, h := f.Width, f.Height
	// Threshold: deviations beyond this are treated as real detail.
	const edge = 24
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			i := y*w + x
			center := int(f.Y[i])
			sum := int(f.Y[i-w-1]) + int(f.Y[i-w]) + int(f.Y[i-w+1]) +
				int(f.Y[i-1]) + int(f.Y[i+1]) +
				int(f.Y[i+w-1]) + int(f.Y[i+w]) + int(f.Y[i+w+1])
			avg := (sum + 4) / 8
			d := center - avg
			if d > edge || d < -edge {
				continue // real edge: preserve
			}
			g.Y[i] = uint8((center*(4-blend) + avg*blend + 2) / 4)
		}
	}
	c.Count(perf.KDeblock, int64((w-2)*(h-2)))
	return g
}
