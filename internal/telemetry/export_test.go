package telemetry

import (
	"testing"
)

func TestExportPrefixFilter(t *testing.T) {
	r := NewRegistry()
	r.Counter("worker.jobs").Add(3)
	r.Counter("fleet.leases").Add(9)
	r.Gauge("worker.depth").Set(2)
	r.Histogram("worker.seconds", 1, 10).Observe(4)

	e := r.Export("worker.")
	if len(e.Counters) != 1 || e.Counters["worker.jobs"] != 3 {
		t.Errorf("counters = %v, want only worker.jobs=3", e.Counters)
	}
	if len(e.Gauges) != 1 || e.Gauges["worker.depth"] != 2 {
		t.Errorf("gauges = %v, want only worker.depth=2", e.Gauges)
	}
	h, ok := e.Histograms["worker.seconds"]
	if !ok || len(e.Histograms) != 1 {
		t.Fatalf("histograms = %v, want only worker.seconds", e.Histograms)
	}
	if len(h.Counts) != 3 || h.Counts[1] != 1 || h.Sum != 4 {
		t.Errorf("hist export = %+v, want one observation of 4 in (1,10]", h)
	}
}

func TestAbsorbDeltas(t *testing.T) {
	r := NewRegistry()
	prev := Export{Counters: map[string]int64{"worker.jobs": 5}}
	cur := Export{Counters: map[string]int64{"worker.jobs": 8}}
	r.Absorb(cur, prev)
	if got := r.Counter("worker.jobs").Value(); got != 3 {
		t.Errorf("absorbed %d, want delta 3", got)
	}
	// A second identical push is a zero delta, not a double count.
	r.Absorb(cur, cur)
	if got := r.Counter("worker.jobs").Value(); got != 3 {
		t.Errorf("duplicate push changed counter to %d", got)
	}
}

func TestAbsorbRestartFallback(t *testing.T) {
	r := NewRegistry()
	// The sender restarted: its cumulative value went backwards. The
	// current snapshot is applied whole rather than dropped.
	prev := Export{Counters: map[string]int64{"worker.jobs": 100}}
	cur := Export{Counters: map[string]int64{"worker.jobs": 4}}
	r.Absorb(cur, prev)
	if got := r.Counter("worker.jobs").Value(); got != 4 {
		t.Errorf("restart fallback absorbed %d, want 4", got)
	}
}

func TestAbsorbGaugesTakeLastValue(t *testing.T) {
	r := NewRegistry()
	r.Absorb(Export{Gauges: map[string]float64{"worker.depth": 5}}, Export{})
	r.Absorb(Export{Gauges: map[string]float64{"worker.depth": 2}},
		Export{Gauges: map[string]float64{"worker.depth": 5}})
	e := r.Export("worker.")
	if e.Gauges["worker.depth"] != 2 {
		t.Errorf("gauge = %v, want last-written 2", e.Gauges["worker.depth"])
	}
}

func TestAbsorbHistogramDeltas(t *testing.T) {
	r := NewRegistry()
	prev := Export{Histograms: map[string]HistExport{
		"worker.seconds": {Bounds: []float64{1, 10}, Counts: []int64{1, 0, 0}, Sum: 0.5},
	}}
	cur := Export{Histograms: map[string]HistExport{
		"worker.seconds": {Bounds: []float64{1, 10}, Counts: []int64{1, 2, 0}, Sum: 8.5},
	}}
	r.Absorb(cur, prev)
	h := r.Histogram("worker.seconds", 1, 10)
	if h.Count() != 2 || h.BucketCount(1) != 2 {
		t.Errorf("count = %d bucket1 = %d, want 2/2", h.Count(), h.BucketCount(1))
	}
	if got := h.Sum(); got != 8 {
		t.Errorf("sum = %v, want delta 8", got)
	}
}

func TestAbsorbSkipsConflictsAndMalformed(t *testing.T) {
	r := NewRegistry()
	r.Histogram("worker.seconds", 1, 10).Observe(0.5)

	// Conflicting bounds from a remote must not panic and must not
	// disturb the local histogram.
	r.Absorb(Export{Histograms: map[string]HistExport{
		"worker.seconds": {Bounds: []float64{5}, Counts: []int64{3, 3}, Sum: 9},
	}}, Export{})
	// Malformed: counts length does not match bounds.
	r.Absorb(Export{Histograms: map[string]HistExport{
		"worker.other": {Bounds: []float64{1}, Counts: []int64{1, 2, 3}, Sum: 1},
	}}, Export{})

	h := r.Histogram("worker.seconds", 1, 10)
	if h.Count() != 1 {
		t.Errorf("conflicting push disturbed local histogram: count = %d", h.Count())
	}
	if _, ok := r.Export("worker.").Histograms["worker.other"]; ok {
		t.Error("malformed push materialized a histogram")
	}
}
