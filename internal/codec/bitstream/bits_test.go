package bitstream

import (
	"testing"
	"testing/quick"

	"vbench/internal/rng"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	w := NewBitWriter()
	pattern := []int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewBitReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsReadBitsProperty(t *testing.T) {
	f := func(values []uint32) bool {
		w := NewBitWriter()
		widths := make([]uint, len(values))
		for i, v := range values {
			n := uint(1)
			for ; n < 32 && v>>n != 0; n++ {
			}
			widths[i] = n
			w.WriteBits(v&(1<<n-1), n)
		}
		r := NewBitReader(w.Bytes())
		for i, v := range values {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				return false
			}
			if got != v&(1<<widths[i]-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitLenTracksWrites(t *testing.T) {
	w := NewBitWriter()
	if w.BitLen() != 0 {
		t.Fatalf("fresh writer BitLen = %d", w.BitLen())
	}
	w.WriteBits(0x3, 2)
	if w.BitLen() != 2 {
		t.Errorf("BitLen after 2 bits = %d", w.BitLen())
	}
	w.WriteBits(0xFF, 8)
	if w.BitLen() != 10 {
		t.Errorf("BitLen after 10 bits = %d", w.BitLen())
	}
}

func TestReadPastEnd(t *testing.T) {
	r := NewBitReader([]byte{0xAB})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("reading available bits: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrUnderflow {
		t.Errorf("expected ErrUnderflow, got %v", err)
	}
}

func TestUESmallValues(t *testing.T) {
	// Canonical H.264 ue(v) codes.
	cases := []struct {
		v    uint32
		bits string
	}{
		{0, "1"},
		{1, "010"},
		{2, "011"},
		{3, "00100"},
		{4, "00101"},
		{5, "00110"},
		{6, "00111"},
		{7, "0001000"},
	}
	for _, c := range cases {
		w := NewBitWriter()
		w.WriteUE(c.v)
		if got := w.BitLen(); got != len(c.bits) {
			t.Errorf("ue(%d) length = %d bits, want %d", c.v, got, len(c.bits))
		}
		r := NewBitReader(w.Bytes())
		var s []byte
		for range c.bits {
			b, err := r.ReadBit()
			if err != nil {
				t.Fatal(err)
			}
			s = append(s, byte('0'+b))
		}
		if string(s) != c.bits {
			t.Errorf("ue(%d) = %s, want %s", c.v, s, c.bits)
		}
	}
}

func TestUERoundTripProperty(t *testing.T) {
	f := func(vs []uint32) bool {
		w := NewBitWriter()
		for _, v := range vs {
			w.WriteUE(v % (1 << 24))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vs {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<24) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSERoundTripProperty(t *testing.T) {
	f := func(vs []int32) bool {
		w := NewBitWriter()
		for _, v := range vs {
			w.WriteSE(v % (1 << 20))
		}
		r := NewBitReader(w.Bytes())
		for _, v := range vs {
			got, err := r.ReadSE()
			if err != nil || got != v%(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUEBitsMatchesActual(t *testing.T) {
	for v := uint32(0); v < 1000; v++ {
		w := NewBitWriter()
		w.WriteUE(v)
		if got := UEBits(v); got != w.BitLen() {
			t.Fatalf("UEBits(%d) = %d, actual %d", v, got, w.BitLen())
		}
	}
}

func TestSEBitsMatchesActual(t *testing.T) {
	for v := int32(-500); v < 500; v++ {
		w := NewBitWriter()
		w.WriteSE(v)
		if got := SEBits(v); got != w.BitLen() {
			t.Fatalf("SEBits(%d) = %d, actual %d", v, got, w.BitLen())
		}
	}
}

func TestArithRoundTripFixedProb(t *testing.T) {
	r := rng.New(99)
	for _, prob := range []uint8{1, 32, 128, 200, 255} {
		bits := make([]int, 4000)
		for i := range bits {
			if r.Float64()*256 > float64(prob) {
				bits[i] = 1
			}
		}
		e := NewArithEncoder()
		for _, b := range bits {
			e.EncodeBit(b, prob)
		}
		data := e.Bytes()
		d := NewArithDecoder(data)
		for i, want := range bits {
			if got := d.DecodeBit(prob); got != want {
				t.Fatalf("prob %d: bit %d decoded %d want %d", prob, i, got, want)
			}
		}
	}
}

func TestArithCompressesSkewedStreams(t *testing.T) {
	// A heavily skewed stream must compress well below 1 bit/bin.
	const n = 8000
	e := NewArithEncoder()
	r := rng.New(1)
	ones := 0
	for i := 0; i < n; i++ {
		bit := 0
		if r.Float64() < 0.02 {
			bit = 1
			ones++
		}
		e.EncodeBit(bit, 250) // model close to the true distribution
	}
	data := e.Bytes()
	// Entropy of p=0.02 is ~0.14 bits; allow generous slack plus the
	// 4-byte flush tail.
	maxBytes := n/4/8 + 8
	if len(data) > maxBytes {
		t.Errorf("skewed stream compressed to %d bytes, want <= %d (ones=%d)", len(data), maxBytes, ones)
	}
}

func TestArithBypassRoundTrip(t *testing.T) {
	e := NewArithEncoder()
	vals := []uint32{0, 1, 5, 255, 1023, 0xFFFF}
	widths := []uint{1, 2, 4, 8, 10, 16}
	for i, v := range vals {
		e.EncodeBypassBits(v, widths[i])
	}
	d := NewArithDecoder(e.Bytes())
	for i, v := range vals {
		if got := d.DecodeBypassBits(widths[i]); got != v {
			t.Fatalf("bypass value %d: got %d want %d", i, got, v)
		}
	}
}

func TestArithContextRoundTripProperty(t *testing.T) {
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		// Derive a bit stream and a context-id stream from raw bytes.
		bits := make([]int, 0, len(raw)*8)
		ctxIDs := make([]int, 0, len(raw)*8)
		for _, b := range raw {
			for k := 0; k < 8; k++ {
				bits = append(bits, int(b>>k)&1)
				ctxIDs = append(ctxIDs, (int(b)+k)%4)
			}
		}
		encCtx := make([]Context, 4)
		InitContexts(encCtx)
		e := NewArithEncoder()
		for i, b := range bits {
			e.EncodeCtx(b, &encCtx[ctxIDs[i]])
		}
		decCtx := make([]Context, 4)
		InitContexts(decCtx)
		d := NewArithDecoder(e.Bytes())
		for i := range bits {
			if d.DecodeCtx(&decCtx[ctxIDs[i]]) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnaryGolombRoundTrip(t *testing.T) {
	vals := []uint32{0, 1, 2, 3, 5, 14, 15, 16, 100, 1000, 100000}
	for _, maxPrefix := range []int{1, 4, 14} {
		for _, k := range []uint{0, 1, 3} {
			encCtx := make([]Context, 5)
			InitContexts(encCtx)
			e := NewArithEncoder()
			for _, v := range vals {
				e.EncodeUnaryGolomb(v, encCtx, maxPrefix, k)
			}
			decCtx := make([]Context, 5)
			InitContexts(decCtx)
			d := NewArithDecoder(e.Bytes())
			for _, v := range vals {
				if got := d.DecodeUnaryGolomb(decCtx, maxPrefix, k); got != v {
					t.Fatalf("maxPrefix=%d k=%d: got %d want %d", maxPrefix, k, got, v)
				}
			}
		}
	}
}

func TestUnaryGolombRoundTripProperty(t *testing.T) {
	f := func(vs []uint32) bool {
		encCtx := make([]Context, 3)
		InitContexts(encCtx)
		e := NewArithEncoder()
		for _, v := range vs {
			e.EncodeUnaryGolomb(v%(1<<20), encCtx, 8, 2)
		}
		decCtx := make([]Context, 3)
		InitContexts(decCtx)
		d := NewArithDecoder(e.Bytes())
		for _, v := range vs {
			if d.DecodeUnaryGolomb(decCtx, 8, 2) != v%(1<<20) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContextAdaptationConverges(t *testing.T) {
	c := NewContext()
	for i := 0; i < 200; i++ {
		c.Update(0)
	}
	if c.Prob() < 240 {
		t.Errorf("after 200 zeros, prob = %d, want near 255", c.Prob())
	}
	for i := 0; i < 200; i++ {
		c.Update(1)
	}
	if c.Prob() > 16 {
		t.Errorf("after 200 ones, prob = %d, want near 1", c.Prob())
	}
}

func TestArithLongMixedStream(t *testing.T) {
	// Exercise carry propagation paths with a long adversarial stream.
	r := rng.New(4242)
	const n = 100000
	bits := make([]int, n)
	probs := make([]uint8, n)
	for i := range bits {
		bits[i] = int(r.Uint64() & 1)
		p := uint8(r.Intn(255)) + 1
		probs[i] = p
	}
	e := NewArithEncoder()
	for i := range bits {
		e.EncodeBit(bits[i], probs[i])
	}
	d := NewArithDecoder(e.Bytes())
	for i := range bits {
		if d.DecodeBit(probs[i]) != bits[i] {
			t.Fatalf("mismatch at bin %d", i)
		}
	}
}
