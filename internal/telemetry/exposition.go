package telemetry

import "io"

// WriteText serializes a snapshot of the registry as a line-oriented
// text exposition (the `GET /metrics` format of the fleet master).
// Like WriteJSON it is deterministic for a given metric state: three
// fixed sections, names sorted within each, one value per line.
//
//	# counters
//	codec.encodes 42
//	# gauges
//	harness.workers.active 3
//	# histograms
//	fleet.wait_seconds count 5
//	fleet.wait_seconds sum 1.25
//	fleet.wait_seconds bucket 0.1 3
//	fleet.wait_seconds bucket +Inf 5
//
// Histogram bucket lines carry the bucket's upper bound; the final
// "+Inf" bucket is the overflow count. The schema is documented in
// docs/FORMAT.md.
func (r *Registry) WriteText(w io.Writer) error {
	counters, gauges, hists := r.snapshotNames()
	bw := &errWriter{w: w}

	bw.printf("# counters\n")
	for _, n := range counters {
		bw.printf("%s %d\n", n, r.Counter(n).Value())
	}
	bw.printf("# gauges\n")
	for _, n := range gauges {
		bw.printf("%s %s\n", n, mustJSON(r.gaugeValue(n)))
	}
	bw.printf("# histograms\n")
	for _, n := range hists {
		h := r.Histogram(n)
		bw.printf("%s count %d\n", n, h.Count())
		bw.printf("%s sum %s\n", n, mustJSON(h.Sum()))
		for b, bound := range h.bounds {
			bw.printf("%s bucket %s %d\n", n, mustJSON(bound), h.BucketCount(b))
		}
		bw.printf("%s bucket +Inf %d\n", n, h.BucketCount(len(h.bounds)))
	}
	return bw.err
}
