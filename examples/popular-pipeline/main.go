// Popular-pipeline: simulate the multi-pass transcoding flow of a
// video sharing infrastructure (Figure 3 of the paper).
//
// Every upload is first transcoded to the universal format, then to
// the distribution ladder (VOD). Watch traffic follows a power law
// with exponential cutoff; when a video turns out to be popular, the
// service re-transcodes it at high effort with a stronger encoder —
// extra compute that is amortized across many playbacks while the
// bitrate savings are multiplied across them. This example quantifies
// that trade.
package main

import (
	"fmt"
	"log"

	"vbench"
	"vbench/internal/corpus"
)

func main() {
	clip, err := vbench.ClipByName("funny") // a clip that goes viral
	if err != nil {
		log.Fatal(err)
	}
	seq, err := clip.Generate(8, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	pixPerSec := float64(seq.Width() * seq.Height())

	// --- Pass 1: Upload (universal format) — fast, constant quality.
	upload := vbench.X264(vbench.PresetVeryFast)
	upRes, err := upload.Encode(seq, vbench.Config{RC: vbench.RCConstQP, QP: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upload transcode:   %7d bytes (temporary universal copy)\n", len(upRes.Bitstream))

	// --- Pass 2: VOD ladder — two-pass at the service bitrate.
	targetBPS := 0.5 * pixPerSec
	vod := vbench.X264(vbench.PresetMedium)
	vodRes, err := vod.Encode(seq, vbench.Config{RC: vbench.RCTwoPass, BitrateBPS: targetBPS})
	if err != nil {
		log.Fatal(err)
	}
	vodPSNR, err := vbench.PSNR(seq, vodRes.Recon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VOD transcode:      %7d bytes at %.2f dB (served while cold)\n",
		len(vodRes.Bitstream), vodPSNR)

	// --- Watch traffic: power law with exponential cutoff.
	pop := corpus.DefaultPopularity()
	const corpusSize = 100000
	topShare := pop.WatchShare(corpusSize/100, corpusSize)
	fmt.Printf("\npopularity model:   top 1%% of videos draw %.1f%% of watch time\n", topShare*100)

	// --- The video goes hot: Popular re-transcode at maximum effort,
	// constrained to beat the VOD copy on BOTH bitrate and quality.
	popular := vbench.X265(vbench.PresetVerySlow)
	var best *vbench.Result
	for _, bps := range []float64{targetBPS * 0.97, targetBPS * 0.93, targetBPS * 0.88} {
		res, err := popular.Encode(seq, vbench.Config{RC: vbench.RCTwoPass, BitrateBPS: bps})
		if err != nil {
			log.Fatal(err)
		}
		psnr, err := vbench.PSNR(seq, res.Recon)
		if err != nil {
			log.Fatal(err)
		}
		if psnr >= vodPSNR && len(res.Bitstream) < len(vodRes.Bitstream) {
			best = res
		}
	}
	if best == nil {
		fmt.Println("popular re-transcode could not beat the VOD copy on both axes (constraint miss)")
		return
	}
	bestPSNR, err := vbench.PSNR(seq, best.Recon)
	if err != nil {
		log.Fatal(err)
	}
	saved := len(vodRes.Bitstream) - len(best.Bitstream)
	fmt.Printf("popular transcode:  %7d bytes at %.2f dB (x265-class, veryslow)\n",
		len(best.Bitstream), bestPSNR)
	fmt.Printf("                    B=%.2f, Q=%.3f — both ≥ 1, the Popular constraint\n",
		float64(len(vodRes.Bitstream))/float64(len(best.Bitstream)),
		bestPSNR/vodPSNR)

	// --- Amortization arithmetic.
	extraCompute := best.Seconds + 0 // high-effort encode time (modeled)
	playbacks := 1_000_000.0
	egressSavedGB := float64(saved) * playbacks / 1e9
	fmt.Printf("\nat %.0fM playbacks: one-off %.1fs of extra compute saves %.1f GB of egress\n",
		playbacks/1e6, extraCompute, egressSavedGB)
	fmt.Println("— the savings multiply across playbacks while the cost is paid once (Section 2.5).")
}
