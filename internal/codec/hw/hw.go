// Package hw models the fixed-function hardware encoders of the
// paper's GPU study: NVIDIA NVENC and Intel Quick Sync Video (QSV).
//
// The paper's resources — actual GTX 1060 and i7-6700K silicon — are
// replaced per the reproduction rules by the same codec engine
// restricted to a hardware-friendly tool subset, timed by a
// fixed-function cost model:
//
//   - tool restrictions: small-range fast search, limited sub-pel,
//     single reference, no trellis/RDO, no adaptive quantization, a
//     simple VLC-style entropy engine (NVENC) — hardware must bound
//     area, so it implements fewer compression tools, which is exactly
//     why the paper finds GPUs pay bitrate for their speed;
//   - timing: a deeply pipelined macroblock engine (high parallelism
//     across vectorizable kernels, dedicated entropy/control silicon)
//     plus per-frame host↔device transfer overhead, which is why
//     speedups grow with resolution in Table 3.
package hw

import (
	"vbench/internal/codec"
	"vbench/internal/codec/motion"
	"vbench/internal/perf"
)

// nvencModel is the fixed-function timing model of the NVENC engine.
func nvencModel() *perf.CostModel {
	return &perf.CostModel{
		Name:    "NVENC(GTX1060)",
		ClockHz: 1.2e9,
		CyclesPerOp: [perf.NumKernels]float64{
			perf.KSAD:     1.0,
			perf.KInterp:  1.0,
			perf.KDCT:     1.0,
			perf.KQuant:   1.0,
			perf.KEntropy: 0.15, // dedicated entropy engine
			perf.KIntra:   1.0,
			perf.KDeblock: 1.0,
			perf.KControl: 0.40, // hardwired decision pipeline
			perf.KDecode:  0.15,
		},
		Parallelism: 28, // macroblock-pipeline lanes
		// Host↔device transfer: fixed launch latency per frame plus a
		// per-pixel DMA cost for the raw frame crossing PCIe.
		FrameOverheadCycles:    60_000,
		PerPixelOverheadCycles: 0.45,
	}
}

// qsvModel is the timing model of the Quick Sync engine, which the
// paper measures as generally faster than NVENC (it is on-die, so
// transfer overheads are smaller).
func qsvModel() *perf.CostModel {
	m := nvencModel()
	m.Name = "QSV(i7-6700K)"
	m.ClockHz = 1.3e9
	m.Parallelism = 40
	m.FrameOverheadCycles = 30_000 // on-die: no PCIe hop
	m.PerPixelOverheadCycles = 0.25
	return m
}

// NVENC returns the NVENC-analogue encoder. Its tool set mirrors the
// published capabilities of the Pascal-generation engine: fast
// hardware search with moderate range, half-pel refinement, single
// reference, a CABAC entropy engine, in-loop deblocking — and coarse
// rate-control steps (no per-block adaptive quantization, quantizer
// adjusted in large increments).
func NVENC() *codec.Engine {
	return &codec.Engine{
		Tools: codec.Tools{
			Name:          "nvenc",
			Search:        motion.SearchDiamond,
			SearchRange:   12,
			SubPel:        1,
			MaxRefs:       1,
			Entropy:       codec.EntropyArith,
			Deblock:       true,
			QPGranularity: 2,
		},
		Model: nvencModel(),
	}
}

// QSV returns the Quick-Sync-analogue encoder. The Skylake engine is
// a little more capable than NVENC on search tools (quarter-pel,
// wider range) and faster on transfers, matching its higher VOD
// scores in Table 3 — but its rate control is even coarser, which is
// why the paper finds QSV degrades worst on low-entropy content
// (desktop/presentation rows of Tables 3 and 4).
func QSV() *codec.Engine {
	return &codec.Engine{
		Tools: codec.Tools{
			Name:          "qsv",
			Search:        motion.SearchHex,
			SearchRange:   16,
			SubPel:        2,
			MaxRefs:       1,
			Entropy:       codec.EntropyArith,
			Deblock:       true,
			QPGranularity: 4,
		},
		Model: qsvModel(),
	}
}

// Encoders returns both hardware encoders, keyed by their report
// names.
func Encoders() map[string]*codec.Engine {
	return map[string]*codec.Engine{
		"NVENC": NVENC(),
		"QSV":   QSV(),
	}
}
