package fleet

import (
	"fmt"

	"vbench/internal/telemetry"
)

// Trace-context HTTP headers. The master assigns span identities and
// hands them to the worker on the lease response; the worker echoes
// them on every heartbeat and ack for the same attempt, which is how
// the master knows its trace context survived the round trip
// (fleet.trace_acks).
const (
	HeaderTraceID = "X-Vbench-Trace-Id"
	HeaderSpanID  = "X-Vbench-Span-Id"
)

// JobTraceID is the trace identity shared by every span a job touches
// in any process.
func JobTraceID(id int) string { return fmt.Sprintf("job%d", id) }

// LeaseSpanID identifies the master-side span covering one lease
// attempt. It is deterministic in (job, attempt), so the master never
// has to transport span state — both sides can re-derive it.
func LeaseSpanID(id, attempt int) string { return fmt.Sprintf("job%d.a%d", id, attempt) }

// ExecSpanID identifies the worker-side execution span of one attempt
// on one worker. The worker suffix keeps IDs unique even if two
// workers ever observe the same attempt (e.g. a lease that expired
// mid-flight and was re-leased).
func ExecSpanID(id, attempt int, worker string) string {
	return fmt.Sprintf("job%d.a%d.exec@%s", id, attempt, worker)
}

// EnableTracing opens a master-side span for every lease the queue
// grants and closes it when the attempt resolves (completion, failure,
// requeue, or lease expiry — every path funnels through the queue's
// transition observer, so the expiry sweep is covered for free). The
// spans carry LeaseSpanID identities; worker execution spans name them
// as parents, and telemetry.MergeChromeTraces stitches the two files
// into one timeline.
func (s *Server) EnableTracing(t *telemetry.Tracer) {
	s.tracer = t
	s.q.SetOnTransition(s.observeTransition)
}

// observeTransition runs under the queue lock (see
// Options.OnTransition), which serializes all access to leaseSpans.
func (s *Server) observeTransition(j Job, from, to, reason string) {
	switch {
	case to == Leased.String():
		sp := s.tracer.Start(fmt.Sprintf("lease job=%d", j.ID))
		sp.SetID(LeaseSpanID(j.ID, j.Attempt))
		sp.Arg("trace_id", JobTraceID(j.ID))
		sp.Arg("job", j.ID)
		sp.Arg("attempt", j.Attempt)
		sp.Arg("worker", j.Worker)
		s.leaseSpans[j.ID] = sp
	case from == Leased.String():
		sp, ok := s.leaseSpans[j.ID]
		if !ok {
			return // tracing enabled mid-lease
		}
		delete(s.leaseSpans, j.ID)
		sp.Arg("outcome", to)
		sp.Arg("reason", reason)
		sp.End()
	}
}
