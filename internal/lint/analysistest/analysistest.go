// Package analysistest runs an analyzer over a testdata tree and
// checks its diagnostics against expectations embedded in the
// sources, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Layout: <test dir>/testdata/src is a self-contained Go module
// (with its own go.mod, typically `module lint.test`) holding one or
// more packages. A line that should be flagged carries a trailing
// comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// Every want pattern must match a diagnostic reported on that line,
// every diagnostic must be matched by a want, and suppressed
// diagnostics (//lint:ignore) count as unreported.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"vbench/internal/lint/analysis"
)

// TestData returns the absolute path of the calling test's
// testdata/src module.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: resolving testdata: %v", err)
	}
	return dir
}

// Run loads every package under dir and applies the analyzer,
// comparing diagnostics against the // want expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, nil, "./...")
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: no packages under %s", dir)
	}
	diags, err := analysis.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	pending := map[key][]analysis.Diagnostic{}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		pending[k] = append(pending[k], d)
	}

	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					patterns, err := wantPatterns(c.Text)
					if err != nil {
						t.Errorf("%s: %v", pkg.Fset.Position(c.Pos()), err)
						continue
					}
					if patterns == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{pos.Filename, pos.Line}
					for _, pat := range patterns {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
							continue
						}
						if i := matchDiag(pending[k], re); i >= 0 {
							pending[k] = append(pending[k][:i], pending[k][i+1:]...)
						} else {
							t.Errorf("%s: no diagnostic matching %q", pos, pat)
						}
					}
				}
			}
		}
	}
	for _, rest := range pending {
		for _, d := range rest {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func matchDiag(diags []analysis.Diagnostic, re *regexp.Regexp) int {
	for i, d := range diags {
		if re.MatchString(d.Message) {
			return i
		}
	}
	return -1
}

// wantPatterns extracts the quoted regexps from a "// want ..."
// comment, or returns nil when the comment is not a want directive.
func wantPatterns(comment string) ([]string, error) {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	var patterns []string
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("malformed want directive at %q", rest)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			return nil, fmt.Errorf("unquoting %q: %v", q, err)
		}
		patterns = append(patterns, unq)
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("want directive with no patterns")
	}
	return patterns, nil
}
