// Package analysis is a small, dependency-free core for writing
// project-specific static checkers. It mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer owns a Run function
// that inspects one type-checked package through a Pass and reports
// Diagnostics — but is built only on the standard library so the
// repository stays module-clean. Two drivers feed it: Load (a
// `go list -export`-based loader used by cmd/vbenchlint's standalone
// mode and the tests) and RunVet (the `go vet -vettool` protocol).
//
// Suppression: a diagnostic is dropped when the reported line, or the
// line directly above it, carries a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The reason is mandatory; a directive without one is inert. The
// analyzer list may also be the word "all".
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. It must be a valid flag name.
	Name string
	// Doc is a one-paragraph description of the invariant guarded.
	Doc string
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf. A non-nil error aborts the whole run (reserved
	// for internal failures, not findings).
	Run func(pass *Pass) error
}

// Diagnostic is one finding, already positioned and formatted.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional
// file:line:col: message [analyzer] form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Fact is one function-level observation an analyzer exported via
// ExportFunctionFact. Facts are not findings: they describe what the
// analyzer derived about a declaration (locksafe's acquisition-order
// edges, hotalloc's recognized annotations) and exist so tests can
// assert the derived model even when no diagnostic fires. They are
// positioned at the function's declaration and never suppressed.
type Fact struct {
	Pos      token.Position
	Analyzer string
	// Object is the function's full name (types.Func.FullName).
	Object string
	Text   string
}

// String renders the fact as file:line:col: object: text [analyzer].
func (f Fact) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", f.Pos, f.Object, f.Text, f.Analyzer)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// suppressed maps file:line to the analyzer names ignored there.
	suppressed map[string][]string
	diags      *[]Diagnostic
	facts      *[]Fact
}

// Reportf records a finding at pos unless a //lint:ignore directive
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	if p.isSuppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) isSuppressed(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range p.suppressed[suppressKey(pos.Filename, line)] {
			if name == "all" || name == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

func suppressKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// ExportFunctionFact records a function-level fact for fn; see Fact.
// The fact is positioned at fn's declaration so the analysistest
// runner can match it against a // want directive on that line.
func (p *Pass) ExportFunctionFact(fn *types.Func, format string, args ...interface{}) {
	if fn == nil || p.facts == nil {
		return
	}
	*p.facts = append(*p.facts, Fact{
		Pos:      p.Fset.Position(fn.Pos()),
		Analyzer: p.Analyzer.Name,
		Object:   fn.FullName(),
		Text:     fmt.Sprintf(format, args...),
	})
}

// ignoreDirective matches "lint:ignore <names> <reason>" inside a
// comment. The reason part is required.
var ignoreDirective = regexp.MustCompile(`^lint:ignore\s+([A-Za-z0-9_,]+)\s+\S`)

// suppressionIndex scans every comment in files and records which
// analyzers are ignored on which lines.
func suppressionIndex(fset *token.FileSet, files []*ast.File) map[string][]string {
	idx := map[string][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := ignoreDirective.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				key := suppressKey(pos.Filename, pos.Line)
				idx[key] = append(idx[key], strings.Split(m[1], ",")...)
			}
		}
	}
	return idx
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Run applies each analyzer to each package and returns every
// surviving (non-suppressed) diagnostic, sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAll(pkgs, analyzers)
	return diags, err
}

// RunAll is Run plus the function-level facts the analyzers exported,
// sorted by position then analyzer then text.
func RunAll(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Fact, error) {
	var diags []Diagnostic
	var facts []Fact
	for _, pkg := range pkgs {
		idx := suppressionIndex(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				suppressed: idx,
				diags:      &diags,
				facts:      &facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Text < b.Text
	})
	return diags, facts, nil
}

// CalleeFunc resolves the static callee of call, or nil when the
// callee is not a declared function or method (e.g. a function
// value, conversion, or builtin).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// FromPackage reports whether fn is declared in a package with the
// given name (matched by package name, not import path, so testdata
// stub packages stand in for the real ones).
func FromPackage(fn *types.Func, pkgName string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == pkgName
}

// FromPath reports whether fn is declared in the package with the
// exact import path (used for standard-library matches).
func FromPath(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// IsTestFile reports whether pos sits in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}
