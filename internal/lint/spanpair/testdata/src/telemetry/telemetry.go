// Package telemetry is a stub standing in for vbench/internal/telemetry;
// spanpair matches span constructors by package name and result shape.
package telemetry

// Span mirrors the real nil-safe span.
type Span struct{}

// StartSpan mirrors the real constructor.
func StartSpan(name string) *Span { return nil }

// Child mirrors the real child-span constructor.
func (s *Span) Child(name string) *Span { return nil }

// Arg mirrors the annotation method.
func (s *Span) Arg(key string, value any) *Span { return s }

// End closes the span.
func (s *Span) End() {}
