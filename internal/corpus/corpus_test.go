package corpus

import (
	"math"
	"sort"
	"testing"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/stats"
)

func TestModelWeightsNormalized(t *testing.T) {
	m := NewModel()
	var total float64
	for _, c := range m.Categories {
		if c.Weight < 0 {
			t.Fatalf("negative weight %v", c.Weight)
		}
		total += c.Weight
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %v, want 1", total)
	}
}

func TestModelCategoryCount(t *testing.T) {
	m := NewModel()
	// The paper reports >3500 categories with significant weight; the
	// model's grid should be in that regime.
	if len(m.Categories) < 2000 {
		t.Errorf("only %d categories", len(m.Categories))
	}
}

func TestModelEntropySpansFourDecades(t *testing.T) {
	m := NewModel()
	minE, maxE := math.Inf(1), math.Inf(-1)
	for _, c := range m.Categories {
		minE = math.Min(minE, c.Entropy)
		maxE = math.Max(maxE, c.Entropy)
	}
	if maxE/minE < 1e3 {
		t.Errorf("entropy range %v..%v spans less than 3 decades", minE, maxE)
	}
}

func TestFeaturesInRange(t *testing.T) {
	m := NewModel()
	for i, p := range m.Features() {
		if len(p) != 3 {
			t.Fatalf("feature %d has dimension %d", i, len(p))
		}
		for d, v := range p {
			if v < -1.0001 || v > 1.0001 {
				t.Fatalf("feature %d dim %d = %v out of [-1,1]", i, d, v)
			}
		}
	}
}

func TestSelectProducesKRepresentatives(t *testing.T) {
	m := NewModel()
	sel, err := m.Select(15, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 15 {
		t.Fatalf("selected %d categories, want 15", len(sel))
	}
	// Sorted by (KPixels, Entropy) like Table 2.
	if !sort.SliceIsSorted(sel, func(i, j int) bool {
		if sel[i].KPixels != sel[j].KPixels {
			return sel[i].KPixels < sel[j].KPixels
		}
		return sel[i].Entropy < sel[j].Entropy
	}) {
		t.Error("selection not sorted")
	}
}

func TestSelectCoversResolutionAndEntropy(t *testing.T) {
	m := NewModel()
	sel, err := m.Select(15, 1)
	if err != nil {
		t.Fatal(err)
	}
	resolutions := map[int]bool{}
	minE, maxE := math.Inf(1), math.Inf(-1)
	for _, c := range sel {
		resolutions[c.KPixels] = true
		minE = math.Min(minE, c.Entropy)
		maxE = math.Max(maxE, c.Entropy)
	}
	// Table 2 spans 4 resolutions and a wide entropy range.
	if len(resolutions) < 3 {
		t.Errorf("selection covers only %d resolutions", len(resolutions))
	}
	if maxE/minE < 10 {
		t.Errorf("selection entropy span %v..%v too narrow", minE, maxE)
	}
}

func TestSelectValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.Select(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := m.Select(len(m.Categories)+1, 1); err == nil {
		t.Error("k>n accepted")
	}
}

func TestCoverageSetShape(t *testing.T) {
	m := NewModel()
	cov := m.CoverageSet()
	// 6 resolutions × 6 framerates × 11 entropy samples.
	if len(cov) != 6*6*11 {
		t.Errorf("coverage set has %d entries, want %d", len(cov), 6*6*11)
	}
}

func TestVBenchClipsMatchTable2(t *testing.T) {
	clips := VBenchClips()
	if len(clips) != 15 {
		t.Fatalf("%d clips, want 15", len(clips))
	}
	wantRes := map[string][2]int{
		"cat": {854, 480}, "desktop": {1280, 720}, "presentation": {1920, 1080},
		"chicken": {3840, 2160},
	}
	for name, wh := range wantRes {
		c, err := ClipByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Width != wh[0] || c.Height != wh[1] {
			t.Errorf("%s: %dx%d, want %dx%d", name, c.Width, c.Height, wh[0], wh[1])
		}
	}
	names := map[string]bool{}
	for _, c := range clips {
		if names[c.Name] {
			t.Errorf("duplicate clip %s", c.Name)
		}
		names[c.Name] = true
		if err := c.Params.Validate(); err != nil {
			t.Errorf("%s params invalid: %v", c.Name, err)
		}
	}
	if _, err := ClipByName("nope"); err == nil {
		t.Error("unknown clip accepted")
	}
}

func TestClipGenerateScales(t *testing.T) {
	c, _ := ClipByName("girl") // 1280x720
	seq, err := c.Generate(8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Width() != 160 || seq.Height() != 96 {
		t.Errorf("scaled dims %dx%d, want 160x96", seq.Width(), seq.Height())
	}
	if seq.Width()%16 != 0 || seq.Height()%16 != 0 {
		t.Error("dims not macroblock aligned")
	}
	if len(seq.Frames) != 9 {
		t.Errorf("%d frames, want 9 (0.3s at 30fps)", len(seq.Frames))
	}
	if _, err := c.Generate(0, 1); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := c.Generate(8, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestClipGenerateDeterministic(t *testing.T) {
	c, _ := ClipByName("cat")
	a, err := c.Generate(16, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Generate(16, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Frames {
		if !a.Frames[i].Equal(b.Frames[i]) {
			t.Fatal("clip generation not deterministic")
		}
	}
}

func TestMeasuredEntropyCorrelatesWithPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("entropy measurement encodes all 15 clips")
	}
	eng := profiles.X264(codec.PresetVeryFast)
	var paper, measured []float64
	for _, c := range VBenchClips() {
		seq, err := c.Generate(16, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		e, err := MeasureEntropy(seq, eng)
		if err != nil {
			t.Fatal(err)
		}
		paper = append(paper, c.PaperEntropy)
		measured = append(measured, e)
	}
	rho, err := stats.Spearman(paper, measured)
	if err != nil {
		t.Fatal(err)
	}
	if rho < 0.8 {
		t.Errorf("measured entropy rank correlation with Table 2 = %.3f, want ≥ 0.8", rho)
	}
}

func TestSuitesOccupyTheirRegions(t *testing.T) {
	netflix := NetflixSuite()
	if len(netflix) != 9 {
		t.Errorf("netflix suite has %d clips, want 9", len(netflix))
	}
	for _, c := range netflix {
		if c.Width != 1920 || c.Height != 1080 {
			t.Errorf("netflix clip %s is %dx%d, want 1080p only", c.Name, c.Width, c.Height)
		}
		if c.PaperEntropy < 1 {
			t.Errorf("netflix clip %s entropy %v < 1", c.Name, c.PaperEntropy)
		}
	}
	xiph := XiphSuite()
	if len(xiph) != 41 {
		t.Errorf("xiph suite has %d clips, want 41", len(xiph))
	}
	for _, c := range xiph {
		if c.PaperEntropy < 1 {
			t.Errorf("xiph clip %s entropy %v < 1", c.Name, c.PaperEntropy)
		}
	}
	s17 := SPEC2017Suite()
	if len(s17) != 2 || math.Abs(s17[0].PaperEntropy-s17[1].PaperEntropy) > 0.5 {
		t.Error("spec2017 should be two near-identical-entropy clips")
	}
	if s06 := SPEC2006Suite(); len(s06) != 2 || s06[0].Width > 500 {
		t.Error("spec2006 should be two low-resolution clips")
	}
}

func TestSuiteClipsLookup(t *testing.T) {
	for _, s := range []Suite{SuiteVBench, SuiteNetflix, SuiteXiph, SuiteSPEC17, SuiteSPEC06, SuiteCoverage} {
		clips, err := SuiteClips(s)
		if err != nil || len(clips) == 0 {
			t.Errorf("suite %s: %v (%d clips)", s, err, len(clips))
		}
	}
	if _, err := SuiteClips("bogus"); err == nil {
		t.Error("bogus suite accepted")
	}
}

func TestParamsForEntropyMonotone(t *testing.T) {
	prev := ParamsForEntropy(0.01)
	for _, e := range []float64{0.1, 1, 10, 100} {
		p := ParamsForEntropy(e)
		if err := p.Validate(); err != nil {
			t.Fatalf("params for entropy %v invalid: %v", e, err)
		}
		if p.Detail < prev.Detail || p.Motion < prev.Motion || p.Noise < prev.Noise {
			t.Errorf("params not monotone at entropy %v", e)
		}
		prev = p
	}
}

func TestPopularityModel(t *testing.T) {
	m := DefaultPopularity()
	if m.Weight(1) <= m.Weight(10) {
		t.Error("popularity not decreasing in rank")
	}
	share := m.WatchShare(100, 10000)
	if share < 0.5 {
		t.Errorf("top 1%% share = %v, want a heavy head", share)
	}
	if total := m.WatchShare(10000, 10000); math.Abs(total-1) > 1e-9 {
		t.Errorf("full share = %v, want 1", total)
	}
}
