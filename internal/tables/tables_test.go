package tables

import (
	"strings"
	"testing"
)

func TestRenderAlignsColumns(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, underline, header, separator, 2 rows = 6? title+rule+header+sep+2
		if len(lines) != 6 {
			t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	// The value column should start at the same offset in every row.
	header := lines[2]
	row1 := lines[4]
	row2 := lines[5]
	col := strings.Index(header, "value")
	if col < 0 {
		t.Fatalf("header lacks value column: %q", header)
	}
	if row1[col] != '1' || row2[col] != '2' {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("x")
	tb.AddRow("x", "y", "z")
	if len(tb.Rows[0]) != 2 || len(tb.Rows[1]) != 2 {
		t.Error("rows not normalized to header width")
	}
	if tb.Rows[0][1] != "" || tb.Rows[1][1] != "y" {
		t.Error("row contents wrong")
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := New("", "v")
	tb.AddRowf(3.14159)
	if tb.Rows[0][0] != "3.14" {
		t.Errorf("float formatted as %q", tb.Rows[0][0])
	}
	tb.AddRowf(0.012345)
	if tb.Rows[1][0] != "0.012" {
		t.Errorf("small float formatted as %q", tb.Rows[1][0])
	}
	tb.AddRowf(12345.6)
	if tb.Rows[2][0] != "12346" {
		t.Errorf("large float formatted as %q", tb.Rows[2][0])
	}
	tb.AddRowf(42)
	if tb.Rows[3][0] != "42" {
		t.Errorf("int formatted as %q", tb.Rows[3][0])
	}
}

func TestFormatFloatZeroAndNegative(t *testing.T) {
	if FormatFloat(0) != "0" {
		t.Error("zero format")
	}
	if FormatFloat(-3.456) != "-3.46" {
		t.Errorf("negative format = %q", FormatFloat(-3.456))
	}
}

func TestNotes(t *testing.T) {
	tb := New("T", "c")
	tb.AddNote("hello %d", 5)
	if !strings.Contains(tb.String(), "note: hello 5") {
		t.Error("note missing from output")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x,y", `q"r`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"q\"\"r\"\n"
	if sb.String() != want {
		t.Errorf("CSV = %q, want %q", sb.String(), want)
	}
}
