package metrics

import (
	"errors"
	"math"
	"sort"
)

// Bjøntegaard delta metrics — the video community's standard way of
// condensing two rate-distortion curves (like Figure 2's) into a
// single number: BD-rate is the average bitrate difference at equal
// quality (negative = the test encoder needs fewer bits), BD-PSNR the
// average quality difference at equal bitrate. Both integrate
// third-order polynomial fits of PSNR vs log-bitrate over the
// overlapping range, per the original VCEG-M33 method.

// RDCurvePoint is one operating point of a rate-distortion curve.
type RDCurvePoint struct {
	// Bitrate in any consistent unit (bits/s or bits/pixel/s).
	Bitrate float64
	// PSNR in dB.
	PSNR float64
}

// fitCubic fits y = a + b·x + c·x² + d·x³ by least squares via the
// normal equations (4×4 Gaussian elimination).
func fitCubic(xs, ys []float64) ([4]float64, error) {
	if len(xs) < 4 {
		return [4]float64{}, errors.New("metrics: BD fit needs at least 4 points")
	}
	var m [4][5]float64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := range xs {
				m[i][j] += math.Pow(xs[k], float64(i+j))
			}
		}
		for k := range xs {
			m[i][4] += ys[k] * math.Pow(xs[k], float64(i))
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		m[col], m[pivot] = m[pivot], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			return [4]float64{}, errors.New("metrics: singular BD fit")
		}
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 5; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var coef [4]float64
	for i := 0; i < 4; i++ {
		coef[i] = m[i][4] / m[i][i]
	}
	return coef, nil
}

// integrateCubic returns the antiderivative of the cubic evaluated at x.
func integrateCubic(c [4]float64, x float64) float64 {
	return c[0]*x + c[1]*x*x/2 + c[2]*x*x*x/3 + c[3]*x*x*x*x/4
}

// prepare sorts a curve by bitrate and extracts (log10 rate, psnr).
func prepare(curve []RDCurvePoint) (logR, psnr []float64, err error) {
	if len(curve) < 4 {
		return nil, nil, errors.New("metrics: BD metrics need ≥ 4 points per curve")
	}
	pts := append([]RDCurvePoint(nil), curve...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Bitrate < pts[j].Bitrate })
	for _, p := range pts {
		if p.Bitrate <= 0 {
			return nil, nil, errors.New("metrics: non-positive bitrate in RD curve")
		}
		logR = append(logR, math.Log10(p.Bitrate))
		psnr = append(psnr, p.PSNR)
	}
	return logR, psnr, nil
}

// BDRate returns the average bitrate change of test vs reference at
// equal quality, in percent (negative = test saves bits).
func BDRate(reference, test []RDCurvePoint) (float64, error) {
	refR, refQ, err := prepare(reference)
	if err != nil {
		return 0, err
	}
	testR, testQ, err := prepare(test)
	if err != nil {
		return 0, err
	}
	// Fit log-rate as a function of quality.
	refFit, err := fitCubic(refQ, refR)
	if err != nil {
		return 0, err
	}
	testFit, err := fitCubic(testQ, testR)
	if err != nil {
		return 0, err
	}
	lo := math.Max(minOf(refQ), minOf(testQ))
	hi := math.Min(maxOf(refQ), maxOf(testQ))
	if hi <= lo {
		return 0, errors.New("metrics: RD curves do not overlap in quality")
	}
	avgDiff := ((integrateCubic(testFit, hi) - integrateCubic(testFit, lo)) -
		(integrateCubic(refFit, hi) - integrateCubic(refFit, lo))) / (hi - lo)
	return (math.Pow(10, avgDiff) - 1) * 100, nil
}

// BDPSNR returns the average quality change of test vs reference at
// equal bitrate, in dB (positive = test is better).
func BDPSNR(reference, test []RDCurvePoint) (float64, error) {
	refR, refQ, err := prepare(reference)
	if err != nil {
		return 0, err
	}
	testR, testQ, err := prepare(test)
	if err != nil {
		return 0, err
	}
	refFit, err := fitCubic(refR, refQ)
	if err != nil {
		return 0, err
	}
	testFit, err := fitCubic(testR, testQ)
	if err != nil {
		return 0, err
	}
	lo := math.Max(minOf(refR), minOf(testR))
	hi := math.Min(maxOf(refR), maxOf(testR))
	if hi <= lo {
		return 0, errors.New("metrics: RD curves do not overlap in bitrate")
	}
	return ((integrateCubic(testFit, hi) - integrateCubic(testFit, lo)) -
		(integrateCubic(refFit, hi) - integrateCubic(refFit, lo))) / (hi - lo), nil
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		m = math.Min(m, v)
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs {
		m = math.Max(m, v)
	}
	return m
}
