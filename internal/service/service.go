// Package service simulates the video-sharing-infrastructure context
// the benchmark models (Section 2.5 and Figure 3 of the paper): a
// transcoding fleet receives uploads, produces the universal and
// distribution (VOD) transcodes, serves watch traffic whose volume
// follows the power-law popularity distribution, and re-transcodes
// videos that turn out to be popular at high effort — trading one-off
// compute for multiplied storage and egress savings.
//
// The simulator runs on the internal/fleet discrete-event twin: the
// same Queue state machine cmd/vbenchd drives over net/http with a
// wall clock is driven here with a simulated clock and virtual
// workers, so the simulated fleet's leases, queue waits, and
// utilization come from the exact scheduler code of the networked
// service. Every transcode uses the real encoders of this repository
// (with their deterministic cost models), so fleet sizing and the
// compute/storage/egress cost balance all derive from measured work,
// not assumed constants.
package service

import (
	"errors"
	"fmt"
	"time"

	"vbench/internal/codec"
	"vbench/internal/codec/profiles"
	"vbench/internal/corpus"
	"vbench/internal/fleet"
	"vbench/internal/metrics"
	"vbench/internal/rng"
	"vbench/internal/telemetry"
)

// Metric names reported by the simulator (into Config.Metrics).
// Queue waits are simulated seconds (discrete-event time), not wall
// time, so observing them costs one atomic add per scheduled job.
const (
	metricTranscodes  = "service.transcodes"
	metricUtilization = "service.fleet_utilization"
	metricQueueWait   = "service.queue_wait_seconds"
)

// kindModel marks simulator jobs: they carry modeled encode seconds
// (in Spec.Duration) instead of a payload a live worker would run.
const kindModel = "service-model"

// Config parameterizes a simulation run.
type Config struct {
	// Seed drives all sampling.
	Seed uint64
	// Workers is the transcoding fleet size (parallel encoders).
	Workers int
	// Uploads is the number of uploads to simulate.
	Uploads int
	// MeanInterarrivalSeconds spaces uploads (exponential).
	MeanInterarrivalSeconds float64
	// Scale is the clip synthesis scale (work model only; costs are
	// per-pixel normalized back to native sizes).
	Scale int
	// DurationSeconds is the synthesized clip length.
	DurationSeconds float64
	// PopularShare is the fraction of uploads that become popular
	// enough for the high-effort re-transcode (the head of the
	// power-law distribution; the paper's "observed to be popular").
	PopularShare float64
	// ViewsPerPopular is the mean playback count of a popular video;
	// tail videos get ViewsPerTail.
	ViewsPerPopular float64
	ViewsPerTail    float64

	// Encoders for the three passes; defaults are the paper's
	// reference ladder (veryfast upload, medium two-pass VOD,
	// x265-class veryslow popular).
	UploadEncoder  *codec.Engine
	VODEncoder     *codec.Engine
	PopularEncoder *codec.Engine

	// Metrics receives the service.* (and underlying fleet.*)
	// telemetry of this run; nil selects telemetry.Default. Passing a
	// private registry isolates concurrent runs from each other and
	// from the process-wide metrics.
	Metrics *telemetry.Registry

	// RecordLog captures the fleet job-state transition log of the
	// run in Stats.TransitionLog — byte-for-byte reproducible for a
	// fixed seed, the determinism witness of the discrete-event twin.
	RecordLog bool
}

// DefaultConfig returns a small but representative simulation.
func DefaultConfig() Config {
	return Config{
		Seed:                    1,
		Workers:                 4,
		Uploads:                 40,
		MeanInterarrivalSeconds: 0.02,
		Scale:                   16,
		DurationSeconds:         0.4,
		PopularShare:            0.05,
		ViewsPerPopular:         2e6,
		ViewsPerTail:            40,
	}
}

func (c *Config) withDefaults() error {
	if c.Workers <= 0 || c.Uploads <= 0 {
		return errors.New("service: need positive workers and uploads")
	}
	if c.MeanInterarrivalSeconds <= 0 || c.DurationSeconds <= 0 {
		return errors.New("service: need positive interarrival and duration")
	}
	if c.Scale <= 0 {
		c.Scale = 16
	}
	if c.UploadEncoder == nil {
		c.UploadEncoder = profiles.X264(codec.PresetVeryFast)
	}
	if c.VODEncoder == nil {
		c.VODEncoder = profiles.X264(codec.PresetMedium)
	}
	if c.PopularEncoder == nil {
		// The documented ladder re-transcodes hot videos at x265-class
		// veryslow effort (the paper's storage/egress trade).
		c.PopularEncoder = profiles.X265(codec.PresetVerySlow)
	}
	if c.Metrics == nil {
		c.Metrics = telemetry.Default
	}
	return nil
}

// Stats is the outcome of a simulation.
type Stats struct {
	Uploads             int
	UploadTranscodes    int
	VODTranscodes       int
	PopularRetranscodes int

	// ComputeSeconds is modeled encode time per pass.
	UploadComputeSeconds  float64
	VODComputeSeconds     float64
	PopularComputeSeconds float64

	// StorageBytes is what remains stored (universal copies are
	// temporary; the better of VOD/popular is kept per video).
	StorageBytes int64
	// EgressBytes is total bytes served across all playbacks.
	EgressBytes int64
	// EgressSavedBytes is what the popular re-transcodes saved
	// relative to serving the VOD copies.
	EgressSavedBytes int64

	// Queueing behaviour of the fleet.
	MeanQueueWaitSeconds float64
	MaxQueueWaitSeconds  float64
	FleetUtilization     float64

	// Quality bookkeeping: mean PSNR of the served copies.
	MeanServedPSNR float64

	// TransitionLog is the fleet job-state transition log (empty
	// unless Config.RecordLog is set).
	TransitionLog string
}

// TotalComputeSeconds sums the three passes.
func (s *Stats) TotalComputeSeconds() float64 {
	return s.UploadComputeSeconds + s.VODComputeSeconds + s.PopularComputeSeconds
}

// cachedTranscode holds the per-clip encode results reused across
// uploads of the same category.
type cachedTranscode struct {
	clip          corpus.Clip
	vodBytes      int64
	popBytes      int64
	vodPSNR       float64
	popPSNR       float64
	uploadSeconds float64
	vodSeconds    float64
	popSeconds    float64
	popValid      bool
}

// Run executes the simulation.
func Run(cfg Config) (*Stats, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	sp := telemetry.StartSpan("service simulation")
	defer sp.End()
	obsTranscodes := cfg.Metrics.Counter(metricTranscodes)
	obsUtilization := cfg.Metrics.Gauge(metricUtilization)
	obsQueueWait := cfg.Metrics.Histogram(metricQueueWait,
		1e-3, 1e-2, 1e-1, 1, 10, 100)

	r := rng.New(cfg.Seed)
	clips := corpus.VBenchClips()
	// Weight upload categories toward the corpus distribution: sample
	// clips by their resolution share.
	weights := make([]float64, len(clips))
	for i, c := range clips {
		for _, rs := range corpus.StandardResolutions {
			if rs.Res.KPixels() == c.KPixels() {
				weights[i] = rs.Share
			}
		}
		if weights[i] == 0 {
			weights[i] = 0.01
		}
	}

	cache := map[string]*cachedTranscode{}
	prepare := func(clip corpus.Clip) (*cachedTranscode, error) {
		if ct, ok := cache[clip.Name]; ok {
			return ct, nil
		}
		seq, err := clip.Generate(cfg.Scale, cfg.DurationSeconds)
		if err != nil {
			return nil, err
		}
		ct := &cachedTranscode{clip: clip}
		up, err := cfg.UploadEncoder.Encode(seq, codec.Config{RC: codec.RCConstQP, QP: 20})
		if err != nil {
			return nil, fmt.Errorf("service: upload transcode of %s: %w", clip.Name, err)
		}
		ct.uploadSeconds = up.Seconds
		target := float64(len(up.Bitstream)) * 8 / seq.Duration() / 3
		vod, err := cfg.VODEncoder.Encode(seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: target})
		if err != nil {
			return nil, fmt.Errorf("service: vod transcode of %s: %w", clip.Name, err)
		}
		ct.vodSeconds = vod.Seconds
		ct.vodBytes = int64(len(vod.Bitstream))
		ct.vodPSNR, err = metrics.SequencePSNR(seq, vod.Recon)
		if err != nil {
			return nil, err
		}
		pop, err := cfg.PopularEncoder.Encode(seq, codec.Config{RC: codec.RCTwoPass, BitrateBPS: target * 0.95})
		if err != nil {
			return nil, fmt.Errorf("service: popular transcode of %s: %w", clip.Name, err)
		}
		ct.popSeconds = pop.Seconds
		ct.popBytes = int64(len(pop.Bitstream))
		ct.popPSNR, err = metrics.SequencePSNR(seq, pop.Recon)
		if err != nil {
			return nil, err
		}
		// The Popular constraint: better on BOTH axes or it is not kept.
		ct.popValid = ct.popBytes < ct.vodBytes && ct.popPSNR >= ct.vodPSNR
		cache[clip.Name] = ct
		return ct, nil
	}

	// The fleet twin: the networked master's Queue under a simulated
	// clock. Leases never expire and nothing retries — the economics
	// model assumes reliable workers; the fault paths are exercised by
	// the fleet package's own tests and the live service.
	sim := fleet.NewSim(fleet.SimConfig{
		Workers: cfg.Workers,
		Model: func(j fleet.Job) (float64, fleet.Outcome, fleet.Result) {
			return j.Spec.Duration, fleet.OutcomeDone, fleet.Result{}
		},
		Queue: fleet.Options{
			Metrics:   cfg.Metrics,
			LeaseTTL:  365 * 24 * time.Hour,
			RecordLog: cfg.RecordLog,
		},
	})
	sim.OnLease(func(j fleet.Job, waitSeconds float64) {
		obsTranscodes.Inc()
		obsQueueWait.Observe(waitSeconds)
	})
	// spec wraps one modeled transcode (seconds ride in Duration).
	spec := func(tag string, seconds float64) fleet.JobSpec {
		return fleet.JobSpec{Kind: kindModel, Tag: tag, Duration: seconds}
	}

	stats := &Stats{}
	now := 0.0
	var psnrSum float64

	for u := 0; u < cfg.Uploads; u++ {
		now += r.ExpFloat64() * cfg.MeanInterarrivalSeconds
		clip := clips[weightedPick(weights, r)]
		ct, err := prepare(clip)
		if err != nil {
			return nil, err
		}
		stats.Uploads++

		// All economics are fixed at upload time by the clip and the
		// popularity draw; the fleet twin decides only when each pass
		// runs (queue waits, utilization, makespan).
		popular := r.Float64() < cfg.PopularShare
		views := cfg.ViewsPerTail
		if popular {
			views = cfg.ViewsPerPopular
		}
		stats.UploadTranscodes++
		stats.UploadComputeSeconds += ct.uploadSeconds
		stats.VODTranscodes++
		stats.VODComputeSeconds += ct.vodSeconds
		retranscode := popular && ct.popValid
		servedBytes := ct.vodBytes
		servedPSNR := ct.vodPSNR
		if retranscode {
			stats.PopularRetranscodes++
			stats.PopularComputeSeconds += ct.popSeconds
			stats.EgressSavedBytes += int64(float64(ct.vodBytes-ct.popBytes) * views)
			servedBytes = ct.popBytes
			servedPSNR = ct.popPSNR
		}
		stats.StorageBytes += servedBytes
		stats.EgressBytes += int64(float64(servedBytes) * views)
		psnrSum += servedPSNR

		// Pass 1 (universal) at arrival; pass 2 (VOD ladder) chains on
		// its completion; pass 3 (high-effort re-transcode once hot)
		// chains on the VOD's.
		arrival := time.Duration(now * float64(time.Second))
		sim.SubmitAt(arrival, spec("upload", ct.uploadSeconds), func(s *fleet.Sim, _ fleet.Job) {
			s.SubmitNow(spec("vod", ct.vodSeconds), func(s *fleet.Sim, _ fleet.Job) {
				if retranscode {
					s.SubmitNow(spec("popular", ct.popSeconds), nil)
				}
			})
		})
	}

	if err := sim.Run(); err != nil {
		return nil, err
	}
	if st := sim.Q.Stats(); st.Done != st.Submitted {
		return nil, fmt.Errorf("service: fleet twin left %d of %d jobs unresolved", st.Submitted-st.Done, st.Submitted)
	}

	if stats.Uploads > 0 {
		jobs := float64(stats.UploadTranscodes + stats.VODTranscodes + stats.PopularRetranscodes)
		stats.MeanQueueWaitSeconds = sim.TotalWaitSeconds() / jobs
		stats.MaxQueueWaitSeconds = sim.MaxWaitSeconds()
		stats.MeanServedPSNR = psnrSum / float64(stats.Uploads)
	}
	// Utilization over the makespan (simulated time of the last
	// completion).
	if makespan := sim.ElapsedSeconds(); makespan > 0 {
		stats.FleetUtilization = sim.BusySeconds() / (makespan * float64(cfg.Workers))
	}
	obsUtilization.Set(stats.FleetUtilization)
	stats.TransitionLog = sim.Q.TransitionLog()
	if sp != nil {
		sp.Arg("uploads", stats.Uploads)
		sp.Arg("transcodes", stats.UploadTranscodes+stats.VODTranscodes+stats.PopularRetranscodes)
		sp.Arg("mean_queue_wait_s", stats.MeanQueueWaitSeconds)
		sp.Arg("utilization", stats.FleetUtilization)
	}
	return stats, nil
}

// weightedPick samples an index proportional to w.
func weightedPick(w []float64, r *rng.Rand) int {
	var total float64
	for _, v := range w {
		total += v
	}
	x := r.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Summary renders the stats as sorted key/value lines for reports.
func (s *Stats) Summary() []string {
	return []string{
		fmt.Sprintf("uploads: %d", s.Uploads),
		fmt.Sprintf("transcodes: %d upload, %d vod, %d popular", s.UploadTranscodes, s.VODTranscodes, s.PopularRetranscodes),
		fmt.Sprintf("compute: %.2fs upload, %.2fs vod, %.2fs popular (modeled)", s.UploadComputeSeconds, s.VODComputeSeconds, s.PopularComputeSeconds),
		fmt.Sprintf("storage: %d bytes", s.StorageBytes),
		fmt.Sprintf("egress: %d bytes (saved %d via popular re-transcodes)", s.EgressBytes, s.EgressSavedBytes),
		fmt.Sprintf("queue wait: mean %.3fs, max %.3fs; utilization %.0f%%", s.MeanQueueWaitSeconds, s.MaxQueueWaitSeconds, s.FleetUtilization*100),
		fmt.Sprintf("served quality: %.2f dB mean PSNR", s.MeanServedPSNR),
	}
}
