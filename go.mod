module vbench

go 1.22
