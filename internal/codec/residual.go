package codec

import (
	"errors"

	"vbench/internal/codec/kern"
	"vbench/internal/codec/transform"
	"vbench/internal/perf"
)

// coefBudget caps coefficient magnitudes so malformed streams cannot
// blow up reconstruction arithmetic.
const maxLevel = 1 << 16

// quantizeBlock runs one residual block (n×n, raster order) through
// the forward transform, quantization, optional trellis-style level
// refinement, and the reconstruction path (dequantize + inverse
// transform). It returns the zigzag levels (nil if the block
// quantized to zero) and writes the reconstructed residual into
// reconRes (raster order). The returned slice is arena storage from
// la, valid until the owner's next reset (nil la falls back to the
// heap).
func quantizeBlock(res []int32, reconRes []int32, n, qp int, dz transform.DeadZone, trellis bool, la *levelArena, c *perf.Counters) []int32 {
	nn := n * n
	var coeffs [64]int32
	transform.Forward(res, coeffs[:nn], n)
	c.Count(perf.KDCT, int64(4*n*nn))

	scan := transform.ZigZag4[:]
	if n == 8 {
		scan = transform.ZigZag8[:]
	}
	// Fused reciprocal quantize + zigzag gather; produces exactly
	// transform.Quantize followed by transform.Scan (locked together by
	// TestQuantScanMatchesReference). Counter accounting is unchanged.
	var zz [64]int32
	nonzero := kern.QuantScan(coeffs[:nn], zz[:nn], scan, qp, int64(dz))
	c.Count(perf.KQuant, int64(nn))
	c.DataDepBranches += int64(nn)

	if trellis {
		trellisRefine(zz[:nn], coeffs[:nn], n, qp, c)
		// The refinement only ever zeroes levels, so a coded block can
		// become empty; recheck before committing to the coded path.
		nonzero = false
		for _, v := range zz[:nn] {
			if v != 0 {
				nonzero = true
				break
			}
		}
	}
	if !nonzero {
		for i := range reconRes[:nn] {
			reconRes[i] = 0
		}
		return nil
	}

	// Reconstruction path shared bit-for-bit with the decoder.
	var levels, deq [64]int32
	transform.Unscan(zz[:nn], levels[:nn], n)
	transform.Dequantize(levels[:nn], deq[:nn], qp)
	transform.Inverse(deq[:nn], reconRes[:nn], n)
	c.Count(perf.KQuant, int64(nn))
	c.Count(perf.KDCT, int64(4*n*nn))

	out := la.take(nn)
	copy(out, zz[:nn])
	return out
}

// trellisRefine is the RD-optimized quantization analogue: trailing
// ±1 levels that sit deep in the zigzag tail cost more rate than the
// distortion they remove, so they are zeroed when the deadzone test
// says the coefficient was marginal. The rule is deterministic and
// cheap, mirroring x264's --trellis net effect (slightly fewer bits at
// equal quality).
func trellisRefine(zz []int32, coeffs []int32, n, qp int, c *perf.Counters) {
	step := int64(transform.QStepQ6(qp))
	nn := n * n
	// Find the last significant coefficient.
	last := -1
	for i := nn - 1; i >= 0; i-- {
		if zz[i] != 0 {
			last = i
			break
		}
	}
	if last < 0 {
		return
	}
	// Walk the tail: isolated ±1 levels whose true coefficient
	// magnitude is below 0.6·qstep are dropped.
	zeroRun := 0
	var scan []int
	if n == 4 {
		scan = transform.ZigZag4[:]
	} else {
		scan = transform.ZigZag8[:]
	}
	for i := last; i > nn/4; i-- {
		if zz[i] == 0 {
			zeroRun++
			continue
		}
		if (zz[i] == 1 || zz[i] == -1) && zeroRun >= 2 {
			mag := int64(coeffs[scan[i]])
			if mag < 0 {
				mag = -mag
			}
			// mag is Q3; step is Q6.
			if mag*8*10 < step*6 {
				zz[i] = 0
				zeroRun++
				continue
			}
		}
		zeroRun = 0
	}
	c.Count(perf.KQuant, int64(nn))
	c.DataDepBranches += int64(last + 1)
}

// writeResidualBlock serializes the nonzero zigzag levels of a coded
// block as (run, level, sign, last) tuples.
func writeResidualBlock(w symWriter, zz []int32, rich bool) {
	// Collect nonzero positions.
	var positions [64]int
	np := 0
	for i, v := range zz {
		if v != 0 {
			positions[np] = i
			np++
		}
	}
	prev := -1
	for i := 0; i < np; i++ {
		pos := positions[i]
		run := pos - prev - 1
		v := zz[pos]
		mag := v
		sign := 0
		if v < 0 {
			mag = -v
			sign = 1
		}
		w.UE(runCtxSet(rich, i), uint32(run))
		w.UE(levelCtxSet(rich, i), uint32(mag-1))
		w.Bypass(sign)
		last := 0
		if i == np-1 {
			last = 1
		}
		w.Bit(ctxLast, last)
		prev = pos
	}
}

// readResidualBlock parses a coded block of nn coefficients into zz
// (zigzag order).
func readResidualBlock(r symReader, zz []int32, rich bool) error {
	for i := range zz {
		zz[i] = 0
	}
	pos := -1
	for i := 0; ; i++ {
		run, err := r.UE(runCtxSet(rich, i))
		if err != nil {
			return err
		}
		mag, err := r.UE(levelCtxSet(rich, i))
		if err != nil {
			return err
		}
		sign, err := r.Bypass()
		if err != nil {
			return err
		}
		pos += int(run) + 1
		if pos >= len(zz) {
			return errors.New("codec: residual run past end of block")
		}
		if mag+1 > maxLevel {
			return errors.New("codec: residual level out of range")
		}
		level := int32(mag + 1)
		if sign == 1 {
			level = -level
		}
		zz[pos] = level
		last, err := r.Bit(ctxLast)
		if err != nil {
			return err
		}
		if last == 1 {
			return nil
		}
	}
}

// residualBits estimates the serialized size in bits of a coded block,
// for rate-distortion decisions, without touching entropy state.
func residualBits(zz []int32) int {
	bitsN := 0
	prev := -1
	for pos, v := range zz {
		if v == 0 {
			continue
		}
		run := pos - prev - 1
		mag := v
		if v < 0 {
			mag = -v
		}
		bitsN += ueBitsFast(uint32(run)) + ueBitsFast(uint32(mag-1)) + 2
		prev = pos
	}
	return bitsN
}

func ueBitsFast(v uint32) int {
	n := 0
	x := v + 1
	for x > 0 {
		n++
		x >>= 1
	}
	return 2*n - 1
}

// reconstructBlockFromLevels runs the decoder-side reconstruction of a
// coded block: unscan, dequantize, inverse transform.
func reconstructBlockFromLevels(zz []int32, reconRes []int32, n, qp int, c *perf.Counters) {
	nn := n * n
	var levels, deq [64]int32
	transform.Unscan(zz, levels[:nn], n)
	transform.Dequantize(levels[:nn], deq[:nn], qp)
	transform.Inverse(deq[:nn], reconRes[:nn], n)
	c.Count(perf.KQuant, int64(nn))
	c.Count(perf.KDCT, int64(4*n*nn))
}
