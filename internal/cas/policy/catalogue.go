package policy

import (
	"fmt"

	"vbench/internal/corpus"
)

// rung is one step of the modeled delivery ladder: the resolution
// scale it is encoded at and a bits-per-pixel budget for its size.
type rung struct {
	name string
	// pixelShare scales the clip's native pixel count (ladder rungs
	// downscale: 1.0, 0.44, 0.25, 0.11 track 1080p→720p→540p→360p
	// area ratios).
	pixelShare float64
	// bitsPerPixel models the compressed size at that rung.
	bitsPerPixel float64
	// secondsPerMPix models the encode cost at that rung.
	secondsPerMPix float64
}

var ladder = []rung{
	{name: "high", pixelShare: 1.00, bitsPerPixel: 0.120, secondsPerMPix: 9.0},
	{name: "mid", pixelShare: 0.44, bitsPerPixel: 0.150, secondsPerMPix: 6.0},
	{name: "low", pixelShare: 0.25, bitsPerPixel: 0.180, secondsPerMPix: 4.0},
	{name: "tiny", pixelShare: 0.11, bitsPerPixel: 0.240, secondsPerMPix: 2.5},
}

// DefaultCatalogue models a rendition catalogue from the vbench corpus
// crossed with a four-rung delivery ladder, sized analytically (no
// real encodes): entropy-heavier clips compress worse and cost more to
// encode. Ranks follow corpus order repeated Replicas times, so a
// replica factor of 100 models a 1500-rendition catalogue whose
// popularity curve still spans head to tail.
func DefaultCatalogue(replicas int, seconds float64) []Rendition {
	if replicas < 1 {
		replicas = 1
	}
	clips := corpus.VBenchClips()
	var out []Rendition
	rank := 0
	for rep := 0; rep < replicas; rep++ {
		for _, c := range clips {
			rank++
			mpix := float64(c.Width*c.Height) / 1e6
			// PaperEntropy ∈ [0.2, 7.7] scales both size and cost:
			// 0.5×..1.5× around the ladder's nominal budget.
			hard := 0.5 + c.PaperEntropy/7.7
			for _, r := range ladder {
				frames := c.FrameRate * seconds
				pixels := mpix * r.pixelShare * frames
				out = append(out, Rendition{
					ID:            fmt.Sprintf("%s#%d/%s", c.Name, rep, r.name),
					Bytes:         int64(pixels * 1e6 * r.bitsPerPixel * hard / 8),
					EncodeSeconds: pixels * r.secondsPerMPix * hard,
					Rank:          rank,
				})
			}
		}
	}
	return out
}
