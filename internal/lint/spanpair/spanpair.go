// Package spanpair guards the tracing layer's pairing invariant:
// every span opened through telemetry (StartSpan, Tracer.Start,
// Span.Child) must be closed with End on every path out of the
// function that created it, or the Chrome trace-event export silently
// drops the interval.
//
// The checker is an AST-level all-paths walk, not a full CFG: a span
// variable is accepted when a `defer v.End()` (directly or inside a
// deferred closure) exists, or when every branch/return sequence
// after the creating assignment reaches `v.End()`. Nil-guard idioms
// are understood (`if v != nil { ...; v.End() }` closes the span —
// End is nil-safe, the guard exists for Arg calls). Variables whose
// span escapes the function (returned, stored, or passed onward)
// transfer ownership and are not checked. The telemetry package
// itself (and its tests) is exempt; deliberate exceptions use
// //lint:ignore spanpair <reason>.
package spanpair

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"vbench/internal/lint/analysis"
)

// Analyzer is the spanpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanpair",
	Doc:  "checks that every telemetry span is ended on all paths of its creating function",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if name := pass.Pkg.Name(); name == "telemetry" || name == "telemetry_test" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc analyzes one function body, then recurses into the
// function literals it contains (each literal is its own span scope).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, assign := range spanAssigns(pass, body) {
		checkAssign(pass, body, assign)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkFunc(pass, lit.Body)
			return false
		}
		return true
	})
}

// spanAssign is one tracked span creation: obj receives the result of
// call in statement stmt.
type spanAssign struct {
	obj  types.Object
	call *ast.CallExpr
	stmt ast.Stmt
}

// spanAssigns collects span-creating assignments directly inside body
// (not inside nested function literals). Dropped results are reported
// immediately.
func spanAssigns(pass *analysis.Pass, body *ast.BlockStmt) []spanAssign {
	var out []spanAssign
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isSpanCall(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "result of %s is dropped; the span is never ended", callName(pass.TypesInfo, call))
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanCall(pass.TypesInfo, call) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue // stored into a field/element: ownership transferred
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "result of %s is assigned to _; the span is never ended", callName(pass.TypesInfo, call))
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					out = append(out, spanAssign{obj: obj, call: call, stmt: n})
				}
			}
		}
		return true
	})
	return out
}

// isSpanCall matches telemetry span constructors: functions or
// methods of package telemetry whose name is Start* or Child and
// whose single result has an End method.
func isSpanCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || !analysis.FromPackage(fn, "telemetry") {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Start") && fn.Name() != "Child" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	m := types.NewMethodSet(sig.Results().At(0).Type())
	for i := 0; i < m.Len(); i++ {
		if m.At(i).Obj().Name() == "End" {
			return true
		}
	}
	return false
}

func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.CalleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return "span constructor"
}

// checkAssign verifies one creation site.
func checkAssign(pass *analysis.Pass, body *ast.BlockStmt, sa spanAssign) {
	if escapes(pass, body, sa.obj) {
		return
	}
	if deferEnds(pass, body, sa.obj) {
		return
	}
	chain, ok := findChain(body, sa.stmt)
	if !ok {
		return // e.g. if-init assignment: out of scope for this checker
	}
	c := &checker{pass: pass, obj: sa.obj}
	ended, terminated := false, false
	for level := len(chain) - 1; level >= 0; level-- {
		frame := chain[level]
		ended, terminated = c.scan(frame.list[frame.idx+1:], ended)
		if terminated {
			return
		}
		if level > 0 {
			switch chain[level-1].list[chain[level-1].idx].(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				// The span is re-created each iteration; it must be
				// ended before the loop body ends.
				if !ended {
					pass.Reportf(sa.call.Pos(), "span %s is created inside a loop but not ended within the loop body", sa.obj.Name())
				}
				return
			}
		}
	}
	if !ended {
		pass.Reportf(sa.call.Pos(), "span %s is not ended on the fall-through return path", sa.obj.Name())
	}
}

// escapes reports whether obj's span leaves the function: returned,
// stored, passed as an argument, aliased, or captured by a closure
// doing any of those. Method calls on the span, nil comparisons, and
// reassignments do not escape.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		if len(stack) < 2 {
			return true
		}
		switch parent := stack[len(stack)-2].(type) {
		case *ast.SelectorExpr:
			if parent.X == id {
				return true // method call / field access on the span
			}
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == id {
					return true // reassignment: a fresh creation site
				}
			}
		case *ast.BinaryExpr:
			if parent.Op == token.EQL || parent.Op == token.NEQ {
				return true // nil comparison
			}
		}
		escaped = true
		return false
	})
	return escaped
}

// deferEnds reports whether body contains `defer v.End()` or a
// deferred closure that calls v.End().
func deferEnds(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if isEndCallExpr(pass.TypesInfo, d.Call, obj) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isEndCallExpr(pass.TypesInfo, call, obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isEndCallExpr(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// frame is one level of the block chain from the function body down
// to the creating statement: list[idx] contains the next level (or is
// the assignment itself at the innermost frame).
type frame struct {
	list []ast.Stmt
	idx  int
}

// findChain locates target inside body and returns the chain of
// enclosing statement lists, outermost first. It fails when the
// assignment is not directly inside block statement lists (e.g. an
// if-statement init clause).
func findChain(body *ast.BlockStmt, target ast.Stmt) ([]frame, bool) {
	var chain []frame
	var walk func(list []ast.Stmt) bool
	walk = func(list []ast.Stmt) bool {
		for i, s := range list {
			if s == target {
				chain = append(chain, frame{list, i})
				return true
			}
			if target.Pos() < s.Pos() || target.End() > s.End() {
				continue
			}
			for _, sub := range subLists(s) {
				if walk(sub) {
					chain = append([]frame{{list, i}}, chain...)
					return true
				}
			}
			return false // inside s but not in a plain statement list
		}
		return false
	}
	if !walk(body.List) {
		return nil, false
	}
	return chain, true
}

// subLists returns the statement lists directly nested in s.
func subLists(s ast.Stmt) [][]ast.Stmt {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return [][]ast.Stmt{s.List}
	case *ast.IfStmt:
		lists := [][]ast.Stmt{s.Body.List}
		if s.Else != nil {
			if eb, ok := s.Else.(*ast.BlockStmt); ok {
				lists = append(lists, eb.List)
			} else {
				lists = append(lists, []ast.Stmt{s.Else})
			}
		}
		return lists
	case *ast.ForStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.RangeStmt:
		return [][]ast.Stmt{s.Body.List}
	case *ast.SwitchStmt:
		return clauseLists(s.Body)
	case *ast.TypeSwitchStmt:
		return clauseLists(s.Body)
	case *ast.SelectStmt:
		return clauseLists(s.Body)
	case *ast.LabeledStmt:
		return subLists(s.Stmt)
	}
	return nil
}

func clauseLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			lists = append(lists, c.Body)
		case *ast.CommClause:
			lists = append(lists, c.Body)
		}
	}
	return lists
}

// checker evaluates the all-paths property for one span variable.
type checker struct {
	pass *analysis.Pass
	obj  types.Object
}

// scan walks stmts in order. It returns (ended, terminated): ended
// means every continuation past the list has the span closed;
// terminated means no path falls out of the list (all return, panic,
// branch away — with any leaks already reported).
func (c *checker) scan(stmts []ast.Stmt, ended bool) (bool, bool) {
	for _, s := range stmts {
		if ended {
			return true, false
		}
		switch s := s.(type) {
		case *ast.ExprStmt:
			call, ok := ast.Unparen(s.X).(*ast.CallExpr)
			if !ok {
				continue
			}
			if isEndCallExpr(c.pass.TypesInfo, call, c.obj) {
				ended = true
			} else if isTerminalCall(c.pass.TypesInfo, call) {
				return ended, true
			}
		case *ast.ReturnStmt:
			c.pass.Reportf(s.Pos(), "return leaks span %s (End not called on this path)", c.obj.Name())
			return ended, true
		case *ast.BranchStmt:
			// break/continue/goto: give up on this path without a
			// report — the span may be handled at the jump target.
			return ended, true
		case *ast.DeferStmt:
			if isEndCallExpr(c.pass.TypesInfo, s.Call, c.obj) {
				ended = true
			}
		case *ast.IfStmt:
			ended = c.scanIf(s, ended)
			if e, ok := c.ifTerminates(s, ended); ok {
				return e, true
			}
		case *ast.BlockStmt:
			var term bool
			ended, term = c.scan(s.List, ended)
			if term {
				return ended, true
			}
		case *ast.LabeledStmt:
			var term bool
			ended, term = c.scan([]ast.Stmt{s.Stmt}, ended)
			if term {
				return ended, true
			}
		case *ast.ForStmt:
			c.scan(s.Body.List, ended)
			if bodyEnds(c.pass.TypesInfo, s.Body, c.obj) {
				ended = true
			}
		case *ast.RangeStmt:
			c.scan(s.Body.List, ended)
			if bodyEnds(c.pass.TypesInfo, s.Body, c.obj) {
				ended = true
			}
		case *ast.SwitchStmt:
			ended = c.scanClauses(clauseLists(s.Body), hasDefault(s.Body), ended)
		case *ast.TypeSwitchStmt:
			ended = c.scanClauses(clauseLists(s.Body), hasDefault(s.Body), ended)
		case *ast.SelectStmt:
			ended = c.scanClauses(clauseLists(s.Body), true, ended)
		}
	}
	return ended, false
}

// scanIf folds an if statement into the path state, understanding
// nil-guard idioms on the span variable.
func (c *checker) scanIf(s *ast.IfStmt, ended bool) bool {
	polarity := c.nilCheck(s.Cond)
	switch polarity {
	case nonNilGuard:
		// Body runs only when the span is non-nil; the implicit else
		// is the nil path, which needs no End.
		bodyEnded, bodyTerm := c.scan(s.Body.List, ended)
		return bodyEnded || bodyTerm
	case nilGuard:
		// Body is the nil path: nothing to end there, and any return
		// inside is fine. The else (if present) is the non-nil path.
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			elseEnded, elseTerm := c.scan(eb.List, ended)
			return elseEnded || elseTerm
		}
		return ended
	}
	thenEnded, thenTerm := c.scan(s.Body.List, ended)
	if s.Else == nil {
		return false
	}
	var elseEnded, elseTerm bool
	switch e := s.Else.(type) {
	case *ast.BlockStmt:
		elseEnded, elseTerm = c.scan(e.List, ended)
	default:
		elseEnded, elseTerm = c.scan([]ast.Stmt{e}, ended)
	}
	switch {
	case thenTerm && elseTerm:
		return true // no fall-through at all; scan() callers re-check termination
	case thenTerm:
		return elseEnded
	case elseTerm:
		return thenEnded
	default:
		return thenEnded && elseEnded
	}
}

// ifTerminates reports whether no path falls through s (both branches
// terminate), in which case scanning the remainder is moot.
func (c *checker) ifTerminates(s *ast.IfStmt, ended bool) (bool, bool) {
	if s.Else == nil {
		return ended, false
	}
	if terminates(s.Body.List) {
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			if terminates(e.List) {
				return ended, true
			}
		case *ast.IfStmt:
			if e2, ok := c.ifTerminates(e, ended); ok {
				return e2, true
			}
		}
	}
	return ended, false
}

// terminates is a purely syntactic check that a statement list cannot
// fall through (last statement returns/branches/panics).
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		return ok && isPanic(call)
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

func isPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// scanClauses folds switch/select clauses: the result is ended only
// when a default exists and every clause that can fall through has
// the span ended.
func (c *checker) scanClauses(lists [][]ast.Stmt, exhaustive bool, ended bool) bool {
	if !exhaustive {
		return false
	}
	all := true
	for _, list := range lists {
		e, t := c.scan(list, ended)
		if !e && !t {
			all = false
		}
	}
	return all
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, s := range body.List {
		if c, ok := s.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// bodyEnds reports whether an End call for obj appears anywhere in a
// loop body — used to avoid false positives for spans closed inside
// the loop that created context we do not model precisely.
func bodyEnds(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCallExpr(info, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// nilPolarity classifies an if condition relative to the span var.
type nilPolarity int

const (
	notNilCheck nilPolarity = iota
	nonNilGuard             // v != nil
	nilGuard                // v == nil
)

func (c *checker) nilCheck(cond ast.Expr) nilPolarity {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return notNilCheck
	}
	var other ast.Expr
	if id, ok := ast.Unparen(b.X).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.obj {
		other = b.Y
	} else if id, ok := ast.Unparen(b.Y).(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.obj {
		other = b.X
	} else {
		return notNilCheck
	}
	if tv, ok := c.pass.TypesInfo.Types[other]; !ok || !tv.IsNil() {
		return notNilCheck
	}
	if b.Op == token.NEQ {
		return nonNilGuard
	}
	return nilGuard
}

// isTerminalCall matches calls that never return: panic, os.Exit,
// log.Fatal*, runtime.Goexit, and testing Fatal/Skip helpers.
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	if isPanic(call) {
		return true
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	switch {
	case analysis.FromPath(fn, "os") && fn.Name() == "Exit":
		return true
	case analysis.FromPath(fn, "runtime") && fn.Name() == "Goexit":
		return true
	case analysis.FromPath(fn, "log") && strings.HasPrefix(fn.Name(), "Fatal"):
		return true
	case analysis.FromPath(fn, "testing"):
		switch fn.Name() {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}
