package codec

import "testing"

func TestInitialQPMonotoneInBitrate(t *testing.T) {
	// Richer budgets must never raise the starting quantizer.
	pixels := 1280 * 720
	prev := 52
	for _, bits := range []float64{1e4, 1e5, 1e6, 1e7, 1e8} {
		qp := initialQP(bits, pixels)
		if qp > prev {
			t.Errorf("initialQP(%g) = %d rose above %d", bits, qp, prev)
		}
		if qp < 2 || qp > 51 {
			t.Errorf("initialQP(%g) = %d out of range", bits, qp)
		}
		prev = qp
	}
}

func TestRateControlConstQPIsConstant(t *testing.T) {
	rc := newRateControl(Config{RC: RCConstQP, QP: 30}, 1000, 30, 10, nil, 0)
	for i := 0; i < 10; i++ {
		if qp := rc.frameQP(i, frameP); qp != 30 {
			t.Fatalf("frame %d: qp %d", i, qp)
		}
		rc.update(i, 100000)
	}
	// I frames get a small quality boost.
	if qp := rc.frameQP(0, frameI); qp != 28 {
		t.Errorf("I frame qp %d, want 28", qp)
	}
}

func TestRateControlABRFeedback(t *testing.T) {
	rc := newRateControl(Config{RC: RCBitrate, BitrateBPS: 30000}, 1000, 30, 100, nil, 0)
	qp0 := rc.frameQP(0, frameP)
	// Persistently overshooting must raise QP.
	for i := 0; i < 10; i++ {
		rc.update(i, 10000) // 10x the 1000-bit frame budget
	}
	if rc.frameQP(10, frameP) <= qp0 {
		t.Errorf("QP did not rise under overshoot: %d vs %d", rc.frameQP(10, frameP), qp0)
	}
	// Persistently undershooting must lower it again.
	rc2 := newRateControl(Config{RC: RCBitrate, BitrateBPS: 30000}, 1000, 30, 100, nil, 0)
	for i := 0; i < 10; i++ {
		rc2.update(i, 100)
	}
	if rc2.frameQP(10, frameP) >= qp0 {
		t.Errorf("QP did not fall under undershoot: %d vs %d", rc2.frameQP(10, frameP), qp0)
	}
}

func TestRateControlTwoPassBudgetsFollowComplexity(t *testing.T) {
	// Frame 2 was 8x as complex in the first pass: it must receive a
	// larger budget and a not-higher QP than the simple frames.
	firstPass := []int64{1000, 1000, 8000, 1000}
	rc := newRateControl(Config{RC: RCTwoPass, BitrateBPS: 120000}, 1000, 30, 4, firstPass, 32)
	if rc.budgets[2] <= rc.budgets[0] {
		t.Errorf("complex frame budget %v not above simple %v", rc.budgets[2], rc.budgets[0])
	}
	if rc.passQP[2] < rc.passQP[0]-10 || rc.passQP[2] > rc.passQP[0]+10 {
		t.Errorf("two-pass QPs wildly divergent: %v vs %v", rc.passQP[2], rc.passQP[0])
	}
	var total float64
	for _, b := range rc.budgets {
		total += b
	}
	want := 120000.0 / 30 * 4
	if total < want*0.99 || total > want*1.01 {
		t.Errorf("budgets sum to %v, want %v", total, want)
	}
}

func TestClampQP(t *testing.T) {
	if clampQP(-5) != 2 || clampQP(70) != 51 || clampQP(30) != 30 {
		t.Error("clampQP bounds wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{RC: RCConstQP, QP: -1},
		{RC: RCConstQP, QP: 52},
		{RC: RCBitrate, BitrateBPS: 0},
		{RC: RCTwoPass, BitrateBPS: -5},
		{RC: RCMode(9)},
		{RC: RCConstQP, QP: 20, KeyInterval: -1},
		{RC: RCConstQP, QP: 20, Slices: -1},
		{RC: RCConstQP, QP: 20, Slices: 100},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	good := Config{RC: RCTwoPass, BitrateBPS: 1e6, KeyInterval: 30, Slices: 4}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestRCModeStrings(t *testing.T) {
	if RCConstQP.String() != "crf" || RCBitrate.String() != "abr" || RCTwoPass.String() != "2pass" {
		t.Error("rc mode names wrong")
	}
}
