package locksafe_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), locksafe.Analyzer)
}
