package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is a process-wide metrics namespace: counters, gauges, and
// fixed-bucket histograms, each identified by a dotted name. Metric
// handles are get-or-create and safe to cache in package variables;
// updates are lock-free atomics, so instrumented hot paths pay one
// atomic add per event. Snapshot serialization is deterministic: the
// same metric state always produces the same bytes (names sorted,
// sections in fixed order), so snapshots diff cleanly in tests.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		gaugeFns: map[string]func() float64{},
		hists:    map[string]*Histogram{},
	}
}

// Default is the process-wide registry used by the package-level
// helpers and exported by the debug endpoint.
var Default = NewRegistry()

// GetCounter returns the named counter from the default registry.
func GetCounter(name string) *Counter { return Default.Counter(name) }

// GetGauge returns the named gauge from the default registry.
func GetGauge(name string) *Gauge { return Default.Gauge(name) }

// GetHistogram returns the named histogram from the default registry.
func GetHistogram(name string, bounds ...float64) *Histogram {
	return Default.Histogram(name, bounds...)
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// AddDuration adds d in nanoseconds.
func (c *Counter) AddDuration(d time.Duration) { c.v.Add(int64(d)) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with v <= bounds[i] (and greater than the previous
// bound); one extra overflow bucket catches everything above the last
// bound. Count and Sum accompany the buckets. Updates are atomic per
// field; a snapshot taken concurrently with observations may be off by
// the in-flight events, which is fine for telemetry.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// BucketCount returns the count of bucket i (i == len(Bounds()) is the
// overflow bucket).
func (h *Histogram) BucketCount(i int) int64 { return h.counts[i].Load() }

// Bounds returns the upper bounds of the histogram's buckets.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a function evaluated at snapshot time. The first
// registration for a name wins; later ones are ignored, so per-run
// components can re-register idempotently.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.gaugeFns[name]; !ok {
		r.gaugeFns[name] = fn
	}
}

// Histogram returns the named histogram, creating it with the given
// sorted upper bounds on first use. Later calls that pass bounds must
// pass the same set (order-insensitive): two callers silently sharing
// one histogram while believing they own different bucket layouts
// would corrupt both views, so a conflicting re-registration panics
// instead of being ignored. Calls with no bounds are pure lookups
// (the snapshot writers use them) and never conflict.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
		return h
	}
	if len(bounds) > 0 {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		if !equalBounds(h.bounds, bs) {
			panic(fmt.Sprintf("telemetry: histogram %q re-registered with conflicting buckets %v (existing %v)",
				name, bs, h.bounds))
		}
	}
	return h
}

// equalBounds reports whether two sorted bound sets are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Reset drops every metric. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.gaugeFns = map[string]func() float64{}
	r.hists = map[string]*Histogram{}
}

// snapshotNames returns the sorted metric names per section.
func (r *Registry) snapshotNames() (counters, gauges, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counters {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.gaugeFns {
		if _, shadowed := r.gauges[n]; !shadowed {
			gauges = append(gauges, n)
		}
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return counters, gauges, hists
}

// gaugeValue reads a gauge or gauge function by name.
func (r *Registry) gaugeValue(name string) float64 {
	r.mu.Lock()
	g := r.gauges[name]
	fn := r.gaugeFns[name]
	r.mu.Unlock()
	if g != nil {
		return g.Value()
	}
	if fn != nil {
		return fn()
	}
	return 0
}

// WriteJSON serializes a snapshot of the registry. The output is
// deterministic for a given metric state: sections appear in the fixed
// order counters, gauges, histograms; names are sorted; histogram
// buckets are listed low to high with their upper bound (the overflow
// bucket's bound is "+Inf"). See docs/FORMAT.md for the schema.
func (r *Registry) WriteJSON(w io.Writer) error {
	counters, gauges, hists := r.snapshotNames()
	bw := &errWriter{w: w}

	bw.printf("{\n  \"counters\": {")
	for i, n := range counters {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("\n    %s: %d", mustJSON(n), r.Counter(n).Value())
	}
	bw.printf("\n  },\n  \"gauges\": {")
	for i, n := range gauges {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("\n    %s: %s", mustJSON(n), mustJSON(r.gaugeValue(n)))
	}
	bw.printf("\n  },\n  \"histograms\": {")
	for i, n := range hists {
		if i > 0 {
			bw.printf(",")
		}
		h := r.Histogram(n)
		bw.printf("\n    %s: {\"count\": %d, \"sum\": %s, \"buckets\": [", mustJSON(n), h.Count(), mustJSON(h.Sum()))
		for b, bound := range h.bounds {
			if b > 0 {
				bw.printf(", ")
			}
			bw.printf("{\"le\": %s, \"count\": %d}", mustJSON(bound), h.BucketCount(b))
		}
		if len(h.bounds) > 0 {
			bw.printf(", ")
		}
		bw.printf("{\"le\": \"+Inf\", \"count\": %d}]}", h.BucketCount(len(h.bounds)))
	}
	bw.printf("\n  }\n}\n")
	return bw.err
}

// expvarValue renders the registry as a plain value for expvar.
func (r *Registry) expvarValue() interface{} {
	counters, gauges, hists := r.snapshotNames()
	out := map[string]interface{}{}
	cs := map[string]int64{}
	for _, n := range counters {
		cs[n] = r.Counter(n).Value()
	}
	gs := map[string]float64{}
	for _, n := range gauges {
		gs[n] = r.gaugeValue(n)
	}
	hs := map[string]interface{}{}
	for _, n := range hists {
		h := r.Histogram(n)
		buckets := make([]map[string]interface{}, 0, len(h.bounds)+1)
		for b, bound := range h.bounds {
			buckets = append(buckets, map[string]interface{}{"le": bound, "count": h.BucketCount(b)})
		}
		buckets = append(buckets, map[string]interface{}{"le": "+Inf", "count": h.BucketCount(len(h.bounds))})
		hs[n] = map[string]interface{}{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
	}
	out["counters"] = cs
	out["gauges"] = gs
	out["histograms"] = hs
	return out
}

// mustJSON marshals v, which must be a string or float64 (always
// serializable); it exists to keep the snapshot writer linear.
func mustJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return `"!marshal"`
	}
	return string(b)
}
