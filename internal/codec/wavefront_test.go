package codec

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"vbench/internal/video"
)

// encodeWave encodes src and returns the result, failing the test on
// error.
func encodeWave(t *testing.T, tools Tools, src *video.Sequence, cfg Config) *Result {
	t.Helper()
	res, err := (&Engine{Tools: tools}).Encode(src, cfg)
	if err != nil {
		t.Fatalf("encode (rows-parallel=%d slices=%d): %v", cfg.RowsParallel, cfg.Slices, err)
	}
	return res
}

// sameResult asserts that got matches want byte-for-byte: bitstream,
// every reconstruction plane, and the perf counters.
func sameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if !bytes.Equal(want.Bitstream, got.Bitstream) {
		t.Errorf("%s: bitstream differs from serial (%d vs %d bytes)", label, len(got.Bitstream), len(want.Bitstream))
	}
	if len(want.Recon.Frames) != len(got.Recon.Frames) {
		t.Fatalf("%s: recon frame count %d, want %d", label, len(got.Recon.Frames), len(want.Recon.Frames))
	}
	for i := range want.Recon.Frames {
		w, g := want.Recon.Frames[i], got.Recon.Frames[i]
		if !bytes.Equal(w.Y, g.Y) || !bytes.Equal(w.Cb, g.Cb) || !bytes.Equal(w.Cr, g.Cr) {
			t.Errorf("%s: recon frame %d differs", label, i)
		}
	}
	if want.Counters != got.Counters {
		t.Errorf("%s: perf counters differ:\n got %+v\nwant %+v", label, got.Counters, want.Counters)
	}
}

// TestWavefrontDeterministicUnderParallelism pins the wavefront
// contract: rows-parallel is a scheduling knob only. The same sequence
// encoded at rows-parallel 1 (serial), 2, and 8 — across GOMAXPROCS 1
// and 4, single- and multi-slice, one-pass and two-pass — must produce
// byte-identical bitstreams, reconstructions, and perf counters. Run
// under -race this also exercises the row coordinator and the frame
// feeder for data races.
func TestWavefrontDeterministicUnderParallelism(t *testing.T) {
	src := testSequence(t, 96, 96, 5, defaultParams())
	tools := BaselineTools(PresetMedium)

	configs := []Config{
		{RC: RCConstQP, QP: 26, KeyInterval: 3},
		{RC: RCConstQP, QP: 30, Slices: 3},
		{RC: RCTwoPass, BitrateBPS: 120e3},
	}
	for _, base := range configs {
		serialCfg := base
		serialCfg.RowsParallel = 1
		serial := encodeWave(t, tools, src, serialCfg)

		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			for _, rp := range []int{0, 2, 8} {
				cfg := base
				cfg.RowsParallel = rp
				label := fmt.Sprintf("rc=%v slices=%d rows-parallel=%d gomaxprocs=%d", base.RC, base.Slices, rp, procs)
				sameResult(t, label, serial, encodeWave(t, tools, src, cfg))
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestWavefrontRoundTrip decodes a wavefront-encoded bitstream and
// checks it reconstructs exactly — the decoder must not be able to
// tell which schedule produced the stream.
func TestWavefrontRoundTrip(t *testing.T) {
	src := testSequence(t, 64, 48, 4, defaultParams())
	tools := BaselineTools(PresetSlow)
	res := encodeWave(t, tools, src, Config{RC: RCConstQP, QP: 24, Slices: 2, RowsParallel: 8})
	dec, _, err := Decode(res.Bitstream)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Frames) != len(res.Recon.Frames) {
		t.Fatalf("decoded %d frames, want %d", len(dec.Frames), len(res.Recon.Frames))
	}
	for i := range dec.Frames {
		w, g := res.Recon.Frames[i], dec.Frames[i]
		if !bytes.Equal(w.Y, g.Y) || !bytes.Equal(w.Cb, g.Cb) || !bytes.Equal(w.Cr, g.Cr) {
			t.Errorf("decoded frame %d differs from encoder recon", i)
		}
	}
}

// TestWavefrontEngagesWorkers verifies the parallel path actually runs
// when asked: with dedicated lanes on a tall frame the occupancy
// histogram must record wavefront frames, and with rows-parallel=1 it
// must not.
func TestWavefrontEngagesWorkers(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	src := testSequence(t, 48, 160, 2, defaultParams())
	tools := BaselineTools(PresetUltraFast)
	eng := &Engine{Tools: tools}

	before := obsWaveOccupancy.Count()
	if _, err := eng.Encode(src, Config{RC: RCConstQP, QP: 30, RowsParallel: 1}); err != nil {
		t.Fatalf("serial encode: %v", err)
	}
	if n := obsWaveOccupancy.Count() - before; n != 0 {
		t.Fatalf("rows-parallel=1 recorded %d wavefront frames, want 0", n)
	}
	if _, err := eng.Encode(src, Config{RC: RCConstQP, QP: 30, RowsParallel: 4}); err != nil {
		t.Fatalf("wavefront encode: %v", err)
	}
	if n := obsWaveOccupancy.Count() - before; n != int64(len(src.Frames)) {
		t.Fatalf("rows-parallel=4 recorded %d wavefront frames, want %d", n, len(src.Frames))
	}
}
