// Quickstart: synthesize a benchmark clip, transcode it with the
// reference software encoder, measure the three vbench dimensions,
// and verify the bitstream decodes bit-exactly.
package main

import (
	"fmt"
	"log"

	"vbench"
)

func main() {
	// 1. Pick a benchmark clip and synthesize it at 1/8 scale.
	clip, err := vbench.ClipByName("girl")
	if err != nil {
		log.Fatal(err)
	}
	seq, err := clip.Generate(8, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clip %q: %dx%d @%.0f fps, %d frames (native %dx%d, paper entropy %.1f)\n",
		clip.Name, seq.Width(), seq.Height(), seq.FrameRate, len(seq.Frames),
		clip.Width, clip.Height, clip.PaperEntropy)

	// 2. Transcode with the reference encoder at constant quality.
	enc := vbench.X264(vbench.PresetMedium)
	res, err := enc.Encode(seq, vbench.Config{RC: vbench.RCConstQP, QP: 23})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Measure the three vbench dimensions.
	psnr, err := vbench.PSNR(seq, res.Recon)
	if err != nil {
		log.Fatal(err)
	}
	bitrate, err := vbench.Bitrate(int64(len(res.Bitstream)), seq.Width(), seq.Height(), seq.Duration())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed to %d bytes\n", len(res.Bitstream))
	fmt.Printf("  quality  %.2f dB PSNR\n", psnr)
	fmt.Printf("  bitrate  %.3f bit/pixel/s\n", bitrate)
	fmt.Printf("  speed    %.2f Mpixel/s (modeled on %s)\n",
		float64(seq.PixelCount())/res.Seconds/1e6, enc.Model.Name)

	// 4. Decode and confirm the decoder reproduces the encoder's
	// reconstruction exactly — the codec's defining invariant.
	dec, err := vbench.Decode(res.Bitstream)
	if err != nil {
		log.Fatal(err)
	}
	for i := range dec.Frames {
		if !dec.Frames[i].Equal(res.Recon.Frames[i]) {
			log.Fatalf("frame %d: decode mismatch", i)
		}
	}
	fmt.Printf("decode verified: %d frames bit-identical to the encoder reconstruction\n", len(dec.Frames))
}
