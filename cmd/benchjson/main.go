// Command benchjson converts `go test -bench` text output into a JSON
// report while echoing the text unchanged to stdout, so it can sit at
// the end of a benchmark pipeline without hiding the live output:
//
//	go test -bench HarnessGrid -benchmem -run '^$' . | benchjson -o BENCH_harness.json
//
// The report is a single object: a "context" map of the go test header
// lines (goos, goarch, pkg, cpu) and a "results" array with one entry
// per benchmark line, each carrying the benchmark name, iteration
// count, and every reported metric keyed by its unit (ns/op, B/op,
// allocs/op, plus any b.ReportMetric custom units). JSON map keys are
// emitted sorted, so reports from identical runs are byte-identical
// and diff cleanly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"bufio"
)

// result is one parsed benchmark line. GOMAXPROCS and the key=value
// sub-benchmark segments (e.g. wave=on) are split out of the name so a
// report says what machine shape and feature configuration produced
// each number — a 1-core CI host's MB/s must never be compared against
// a multi-core local run without noticing.
type result struct {
	Name       string             `json:"name"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Params     map[string]string  `json:"params,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// report is the whole run.
type report struct {
	Context map[string]string `json:"context"`
	Results []result          `json:"results"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (stdin is echoed to stdout regardless)")
	flag.Parse()

	rep := report{Context: map[string]string{}, Results: []result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseBenchLine(line); ok {
			rep.Results = append(rep.Results, r)
			continue
		}
		if k, v, ok := strings.Cut(line, ": "); ok && k != "" && !strings.ContainsAny(k, " \t") {
			rep.Context[k] = v
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if *out == "" {
		return
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
}

// parseBenchLine decodes one `BenchmarkName-P  N  value unit ...`
// line; ok is false for anything else (headers, PASS, ok lines).
func parseBenchLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	name, procs := splitProcs(fields[0])
	r := result{
		Name:       name,
		GOMAXPROCS: procs,
		Params:     nameParams(name),
		Iterations: iters,
		Metrics:    map[string]float64{},
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// splitProcs strips the trailing -P GOMAXPROCS suffix that go test
// appends to benchmark names when GOMAXPROCS != 1. Only the suffix
// after the last dash is eaten, and only when it is a plain integer —
// dashes inside the benchmark's own name survive.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p < 1 {
		return name, 1
	}
	return name[:i], p
}

// nameParams extracts key=value sub-benchmark segments (the Go
// convention for labeled sub-benchmarks, e.g. `wave=on` or
// `slices=4`) so feature toggles travel through the report as
// structured fields instead of buried name substrings.
func nameParams(name string) map[string]string {
	var params map[string]string
	for _, seg := range strings.Split(name, "/") {
		if k, v, ok := strings.Cut(seg, "="); ok && k != "" {
			if params == nil {
				params = map[string]string{}
			}
			params[k] = v
		}
	}
	return params
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
