// Package telemetry is a stub standing in for vbench/internal/telemetry;
// the analyzers match it by package name.
package telemetry

// StagesEnabled mirrors the real gate.
func StagesEnabled() bool { return false }

// Span mirrors the real span for sink checks.
type Span struct{}

// Arg mirrors the ordered span annotation sink.
func (s *Span) Arg(key string, value any) *Span { return s }

// StartSpan mirrors the real constructor.
func StartSpan(name string) *Span { return nil }
