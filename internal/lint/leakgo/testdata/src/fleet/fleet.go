// Package fleet exercises leakgo in a long-lived package: goroutines
// whose control flow can never reach the function exit are flagged
// unless the trapped region waits on a cancellation signal.
package fleet

import (
	"context"
	"time"
)

func poll() int    { return 0 }
func handle(v int) {}
func next() int    { return -1 }
func work(n int)   {}

// pumpForever feeds the channel with no way out: flagged.
func pumpForever(ch chan int) {
	go func() { // want "goroutine never terminates and has no cancellation path"
		for {
			ch <- poll()
		}
	}()
}

// drainData selects on a single data channel and loops back: the
// select always blocks and nothing cancels it.
func drainData(data chan int) {
	go func() { // want "goroutine never terminates and has no cancellation path"
		for {
			select {
			case v := <-data:
				handle(v)
			}
		}
	}()
}

// sleepPoll is the classic forgotten ticker: flagged.
func sleepPoll() {
	go func() { // want "goroutine never terminates and has no cancellation path"
		for {
			time.Sleep(time.Second)
			poll()
		}
	}()
}

type pump struct{ ch chan int }

// run loops forever; launching it as a goroutine is flagged at the go
// statement.
func (p *pump) run() {
	for {
		p.ch <- poll()
	}
}

func launchNamed(p *pump) {
	go p.run() // want "goroutine never terminates and has no cancellation path"
}

// ctxLoop returns when the context is cancelled: the return edge
// makes the exit reachable, so there is no trap.
func ctxLoop(ctx context.Context, data chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-data:
				handle(v)
			}
		}
	}()
}

// doneLoop uses a conventional done channel with a return: clean.
func doneLoop(done chan struct{}, data chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-data:
				handle(v)
			}
		}
	}()
}

// quitDrain never returns but its trapped loop receives the quit
// signal — treated as a deliberate drain, not a leak.
func quitDrain(quit chan int, data chan int) {
	go func() {
		for {
			select {
			case <-quit:
				handle(0)
			case v := <-data:
				handle(v)
			}
		}
	}()
}

// rangeLoop exits when the producer closes the channel: clean.
func rangeLoop(ch chan int) {
	go func() {
		for v := range ch {
			handle(v)
		}
	}()
}

// workerLoop drains a work source with a conditional return, the
// harness pool idiom: clean.
func workerLoop() {
	go func() {
		for {
			n := next()
			if n < 0 {
				return
			}
			work(n)
		}
	}()
}

// suppressed documents why this loop is intentionally eternal.
func suppressed(ch chan int) {
	//lint:ignore leakgo this pump is owned by the process and dies with it
	go func() {
		for {
			ch <- poll()
		}
	}()
}
