package kern

import "encoding/binary"

// flushChunks bounds how many chunks may accumulate into the per-lane
// SAD vector before a horizontal sum is forced. The binding constraint
// is laneSum, whose four-lane total must stay below 2¹⁶: an 8-byte
// chunk contributes at most 8·255 = 2040 across the lanes, so 24
// chunks top out at 48960 of the 65535 available. (The per-lane
// ceiling alone would allow 128 chunks of ≤510 each.) A 16×16 block
// is 32 chunks, flushed once mid-block.
const flushChunks = 24

// SAD returns the sum of absolute differences between two w×h pixel
// blocks. a and b point at the top-left sample of each block and are
// indexed with their own row strides. Both blocks must lie fully
// inside their backing planes (no edge clamping — callers handle the
// clamped slow path).
//
//vbench:noalloc
func SAD(a []uint8, aStride int, b []uint8, bStride int, w, h int) int64 {
	var sum int64
	var acc uint64
	chunks := 0
	for y := 0; y < h; y++ {
		ar := a[y*aStride : y*aStride+w]
		br := b[y*bStride : y*bStride+w]
		x := 0
		for ; x+8 <= w; x += 8 {
			xa := binary.LittleEndian.Uint64(ar[x:])
			xb := binary.LittleEndian.Uint64(br[x:])
			acc += absLanes(xa&laneEven, xb&laneEven) +
				absLanes(xa>>8&laneEven, xb>>8&laneEven)
			if chunks++; chunks == flushChunks {
				sum += laneSum(acc)
				acc, chunks = 0, 0
			}
		}
		if x+4 <= w {
			xa := uint64(binary.LittleEndian.Uint32(ar[x:]))
			xb := uint64(binary.LittleEndian.Uint32(br[x:]))
			acc += absLanes(xa&laneEven, xb&laneEven) +
				absLanes(xa>>8&laneEven, xb>>8&laneEven)
			x += 4
			if chunks++; chunks >= flushChunks {
				sum += laneSum(acc)
				acc, chunks = 0, 0
			}
		}
		for ; x < w; x++ {
			d := int(ar[x]) - int(br[x])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
	}
	return sum + laneSum(acc)
}

// SADThresh is SAD with deterministic early termination: after each
// row, if the running sum has reached thresh the scan aborts and the
// partial sum (≥ thresh) is returned with early=true. A false early
// flag means the returned value is the exact SAD. Abort depends only
// on the block contents and thresh, so results are identical across
// runs and platforms; callers that compare the result against a best
// cost derived from thresh observe exactly the same outcome as with a
// full SAD, because an aborted value can never win the comparison.
//
//vbench:noalloc
func SADThresh(a []uint8, aStride int, b []uint8, bStride int, w, h int, thresh int64) (sad int64, early bool) {
	if thresh <= 0 {
		return 0, true
	}
	var sum int64
	for y := 0; y < h; y++ {
		ar := a[y*aStride : y*aStride+w]
		br := b[y*bStride : y*bStride+w]
		var acc uint64
		chunks := 0
		x := 0
		for ; x+8 <= w; x += 8 {
			xa := binary.LittleEndian.Uint64(ar[x:])
			xb := binary.LittleEndian.Uint64(br[x:])
			acc += absLanes(xa&laneEven, xb&laneEven) +
				absLanes(xa>>8&laneEven, xb>>8&laneEven)
			if chunks++; chunks == flushChunks {
				sum += laneSum(acc)
				acc, chunks = 0, 0
			}
		}
		if x+4 <= w {
			xa := uint64(binary.LittleEndian.Uint32(ar[x:]))
			xb := uint64(binary.LittleEndian.Uint32(br[x:]))
			acc += absLanes(xa&laneEven, xb&laneEven) +
				absLanes(xa>>8&laneEven, xb>>8&laneEven)
			x += 4
		}
		sum += laneSum(acc)
		for ; x < w; x++ {
			d := int(ar[x]) - int(br[x])
			if d < 0 {
				d = -d
			}
			sum += int64(d)
		}
		if sum >= thresh && y+1 < h {
			return sum, true
		}
	}
	return sum, false
}
