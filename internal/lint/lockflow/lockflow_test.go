package lockflow_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/lockflow"
)

func TestLockflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockflow.Analyzer)
}
