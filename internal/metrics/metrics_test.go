package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"vbench/internal/rng"
	"vbench/internal/video"
)

func TestMSEIdenticalPlanes(t *testing.T) {
	a := []uint8{1, 2, 3, 4}
	m, err := MSEPlane(a, a)
	if err != nil || m != 0 {
		t.Errorf("MSE of identical planes = %v, %v", m, err)
	}
}

func TestMSEKnownValue(t *testing.T) {
	a := []uint8{0, 0, 0, 0}
	b := []uint8{2, 2, 2, 2}
	m, err := MSEPlane(a, b)
	if err != nil || m != 4 {
		t.Errorf("MSE = %v, want 4 (err %v)", m, err)
	}
}

func TestMSEErrors(t *testing.T) {
	if _, err := MSEPlane([]uint8{1}, []uint8{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := MSEPlane(nil, nil); err == nil {
		t.Error("empty planes accepted")
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// MSE 4 → PSNR = 10·log10(255²/4) ≈ 42.11 dB.
	f := video.NewFrame(16, 16)
	g := video.NewFrame(16, 16)
	for i := range g.Y {
		g.Y[i] = 2
	}
	y, cb, cr, err := FramePSNR(f, g)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * math.Log10(255*255/4.0)
	if math.Abs(y-want) > 0.01 {
		t.Errorf("luma PSNR = %.3f, want %.3f", y, want)
	}
	if cb != MaxPSNR || cr != MaxPSNR {
		t.Errorf("chroma PSNR = %v/%v, want capped %v", cb, cr, MaxPSNR)
	}
}

func TestPSNRCapped(t *testing.T) {
	f := video.NewFrame(16, 16)
	y, _, _, err := FramePSNR(f, f)
	if err != nil || y != MaxPSNR {
		t.Errorf("identical frames PSNR = %v, want %v", y, MaxPSNR)
	}
}

func TestSequencePSNRWeightsPlanesBySamples(t *testing.T) {
	// Corrupt only chroma: sequence PSNR must fall, but less than if
	// luma were corrupted equally (luma has 4x the samples).
	mk := func() *video.Sequence {
		s := &video.Sequence{FrameRate: 30}
		s.Frames = append(s.Frames, video.NewFrame(16, 16))
		return s
	}
	ref := mk()
	chromaBad := mk()
	for i := range chromaBad.Frames[0].Cb {
		chromaBad.Frames[0].Cb[i] += 10
	}
	lumaBad := mk()
	for i := range lumaBad.Frames[0].Y {
		lumaBad.Frames[0].Y[i] += 10
	}
	pc, err := SequencePSNR(ref, chromaBad)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := SequencePSNR(ref, lumaBad)
	if err != nil {
		t.Fatal(err)
	}
	if pc <= pl {
		t.Errorf("chroma-only distortion (%.2f) should score above luma distortion (%.2f)", pc, pl)
	}
}

func TestSequencePSNRMismatch(t *testing.T) {
	a := &video.Sequence{FrameRate: 30, Frames: []*video.Frame{video.NewFrame(16, 16)}}
	b := &video.Sequence{FrameRate: 30}
	if _, err := SequencePSNR(a, b); err == nil {
		t.Error("frame count mismatch accepted")
	}
}

func TestPSNRMonotoneInNoise(t *testing.T) {
	r := rng.New(1)
	ref := video.NewFrame(32, 32)
	for i := range ref.Y {
		ref.Y[i] = uint8(r.Intn(256))
	}
	seqRef := &video.Sequence{FrameRate: 30, Frames: []*video.Frame{ref}}
	prev := math.Inf(1)
	for _, amp := range []int{1, 4, 16, 64} {
		g := ref.Clone()
		rr := rng.New(2)
		for i := range g.Y {
			d := rr.Intn(2*amp+1) - amp
			v := int(g.Y[i]) + d
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			g.Y[i] = uint8(v)
		}
		p, err := SequencePSNR(seqRef, &video.Sequence{FrameRate: 30, Frames: []*video.Frame{g}})
		if err != nil {
			t.Fatal(err)
		}
		if p >= prev {
			t.Errorf("PSNR %.2f did not fall at amplitude %d (prev %.2f)", p, amp, prev)
		}
		prev = p
	}
}

func TestBitrateNormalization(t *testing.T) {
	// 1000 bytes over a 100x100 frame for 2 seconds:
	// 8000 bits / 10000 pixels / 2 s = 0.4 bit/pixel/s.
	b, err := Bitrate(1000, 100, 100, 2)
	if err != nil || math.Abs(b-0.4) > 1e-12 {
		t.Errorf("Bitrate = %v (err %v), want 0.4", b, err)
	}
}

func TestBitrateErrors(t *testing.T) {
	if _, err := Bitrate(100, 0, 10, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Bitrate(100, 10, 10, 0); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestSpeedNormalization(t *testing.T) {
	s, err := Speed(2_000_000, 0.5)
	if err != nil || s != 4 {
		t.Errorf("Speed = %v (err %v), want 4 Mpix/s", s, err)
	}
	if _, err := Speed(0, 1); err == nil {
		t.Error("zero pixels accepted")
	}
	if _, err := Speed(100, 0); err == nil {
		t.Error("zero time accepted")
	}
}

func TestRealTimeSpeed(t *testing.T) {
	// 1080p30 ≈ 62.2 Mpix/s.
	got := RealTimeSpeed(1920, 1080, 30)
	if math.Abs(got-62.208) > 0.001 {
		t.Errorf("RealTimeSpeed = %v, want 62.208", got)
	}
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	r := rng.New(7)
	f := video.NewFrame(32, 32)
	for i := range f.Y {
		f.Y[i] = uint8(r.Intn(256))
	}
	s, err := PlaneSSIM(f.Y, f.Y, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("SSIM of identical planes = %v", s)
	}
}

func TestSSIMFallsWithDistortion(t *testing.T) {
	r := rng.New(8)
	a := make([]uint8, 64*64)
	for i := range a {
		a[i] = uint8(r.Intn(256))
	}
	mild := append([]uint8(nil), a...)
	harsh := append([]uint8(nil), a...)
	for i := range mild {
		mild[i] = clampAdd(mild[i], int(r.Uint64()%9)-4)
		harsh[i] = clampAdd(harsh[i], int(r.Uint64()%65)-32)
	}
	sm, err := PlaneSSIM(a, mild, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := PlaneSSIM(a, harsh, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !(1 > sm && sm > sh) {
		t.Errorf("SSIM ordering violated: 1 > %v > %v expected", sm, sh)
	}
}

func clampAdd(v uint8, d int) uint8 {
	x := int(v) + d
	if x < 0 {
		return 0
	}
	if x > 255 {
		return 255
	}
	return uint8(x)
}

func TestSSIMGeometryErrors(t *testing.T) {
	if _, err := PlaneSSIM(make([]uint8, 16), make([]uint8, 16), 4, 4); err == nil {
		t.Error("plane smaller than window accepted")
	}
	if _, err := PlaneSSIM(make([]uint8, 64), make([]uint8, 32), 8, 8); err == nil {
		t.Error("mismatched planes accepted")
	}
}

func TestSSIMRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		a := make([]uint8, 16*16)
		b := make([]uint8, 16*16)
		for i := range a {
			a[i] = uint8(r.Intn(256))
			b[i] = uint8(r.Intn(256))
		}
		s, err := PlaneSSIM(a, b, 16, 16)
		return err == nil && s >= -1 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
