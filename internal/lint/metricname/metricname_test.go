package metricname_test

import (
	"testing"

	"vbench/internal/lint/analysistest"
	"vbench/internal/lint/metricname"
)

func TestMetricname(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), metricname.Analyzer)
}
