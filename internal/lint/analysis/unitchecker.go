package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON configuration cmd/go writes for each
// package when invoking a -vettool binary (see buildVetConfig in
// cmd/go/internal/work/exec.go). Fields the checker does not consume
// are omitted; unknown JSON keys are ignored by encoding/json.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	GoVersion   string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunVet executes the analyzers over the single package described by
// the vet config file at cfgPath, following the go vet protocol:
// diagnostics go to stderr, the exit code is 0 for a clean package, 2
// when findings were reported, and 1 on internal errors. Packages
// vetted only for their dependents (VetxOnly) are acknowledged
// without analysis — the checkers keep no cross-package facts.
func RunVet(cfgPath string, analyzers []*Analyzer) int {
	cfg, err := readVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
		return 1
	}
	// Writing the (empty) vetx output tells cmd/go the package was
	// processed, so dependency invocations cache instead of re-running.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "vbenchlint: writing vetx output: %v\n", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := typecheck(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
		return 1
	}

	diags, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vbenchlint: %v\n", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

func readVetConfig(path string) (*vetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", path, err)
	}
	if cfg.ImportPath == "" {
		return nil, fmt.Errorf("vet config %s has no import path", path)
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return nil, fmt.Errorf("vet config %s: unsupported compiler %q", path, cfg.Compiler)
	}
	return cfg, nil
}

// PrintVersion implements the -V=full handshake cmd/go performs
// before trusting a vettool: the output must be
// "<path> version devel ... buildID=<content hash>", where the hash
// changes whenever the tool binary changes so stale vet caches are
// invalidated (see toolID in cmd/go/internal/work/buildid.go).
func PrintVersion(w io.Writer) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	// The first field must not contain spaces; cmd/go splits on them.
	name := filepath.ToSlash(exe)
	_, err = fmt.Fprintf(w, "%s version devel buildID=%x\n", name, h.Sum(nil))
	return err
}
