package transform

import (
	"math/rand"
	"testing"

	"vbench/internal/codec/kern"
)

// These tests lock the kern-backed exported API to the in-package
// scalar references (forwardN/inverseN matrix multiplies, the SATD
// butterfly loop, and divide-based Quantize), which remain the
// normative definitions of the transform stage. They complement the
// kern package's own cross-checks against independent restatements.

func randResidual(rng *rand.Rand, nn int, mode int) []int32 {
	blk := make([]int32, nn)
	for i := range blk {
		switch mode {
		case 0:
			blk[i] = int32(rng.Intn(511) - 255)
		case 1:
			blk[i] = int32(rng.Intn(1<<15) - 1<<14)
		default:
			blk[i] = int32([3]int{-(1 << 14), 0, 1 << 14}[rng.Intn(3)])
		}
	}
	return blk
}

func TestKernMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 8} {
		nn := n * n
		flat := dct4Flat[:]
		if n == 8 {
			flat = dct8Flat[:]
		}
		for iter := 0; iter < 2000; iter++ {
			src := randResidual(rng, nn, iter%3)
			want := make([]int32, nn)
			got := make([]int32, nn)

			forwardN(src, want, n, flat)
			Forward(src, got, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Forward n=%d [%d]: got %d want %d", n, i, got[i], want[i])
				}
			}

			inverseN(src, want, n, flat)
			Inverse(src, got, n)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Inverse n=%d [%d]: got %d want %d", n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSATDMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dims := []struct{ w, h int }{{4, 4}, {8, 8}, {16, 16}, {16, 8}, {8, 16}}
	for _, d := range dims {
		for iter := 0; iter < 500; iter++ {
			res := randResidual(rng, d.w*d.h, iter%3)
			if got, want := SATD(res, d.w, d.h), satdRef(res, d.w, d.h); got != want {
				t.Fatalf("SATD %dx%d: got %d want %d", d.w, d.h, got, want)
			}
		}
	}
	for iter := 0; iter < 2000; iter++ {
		blk := randResidual(rng, 16, iter%3)
		if got, want := SATD4(blk), satd4Ref(blk); got != want {
			t.Fatalf("SATD4: got %d want %d", got, want)
		}
	}
}

// TestQuantScanMatchesReference locks kern's fused reciprocal
// quantize+scan to Quantize followed by Scan, across every QP, both
// dead zones, and both block sizes.
func TestQuantScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for qp := MinQP; qp <= MaxQP; qp++ {
		for _, dz := range []DeadZone{DeadZoneIntra, DeadZoneInter} {
			for _, n := range []int{4, 8} {
				nn := n * n
				scan := ZigZag4[:]
				if n == 8 {
					scan = ZigZag8[:]
				}
				for iter := 0; iter < 20; iter++ {
					coeffs := randResidual(rng, nn, iter%3)
					levels := make([]int32, nn)
					want := make([]int32, nn)
					Quantize(coeffs, levels, qp, dz)
					Scan(levels, want, n)
					wantNZ := false
					for _, v := range want {
						if v != 0 {
							wantNZ = true
						}
					}

					got := make([]int32, nn)
					gotNZ := kern.QuantScan(coeffs, got, scan, qp, int64(dz))
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("QuantScan qp=%d dz=%d n=%d [%d]: got %d want %d", qp, dz, n, i, got[i], want[i])
						}
					}
					if gotNZ != wantNZ {
						t.Fatalf("QuantScan qp=%d dz=%d: nonzero %v want %v", qp, dz, gotNZ, wantNZ)
					}
				}
			}
		}
	}
}

// TestQuantStepTablesAgree pins kern's internal step table to
// QStepQ6, so the two definitions cannot drift apart.
func TestQuantStepTablesAgree(t *testing.T) {
	for qp := MinQP; qp <= MaxQP; qp++ {
		// A coefficient exactly at k·step quantizes to k with dz=0;
		// probing a few k values detects any step divergence.
		for k := int64(1); k <= 4; k++ {
			step := int64(QStepQ6(qp))
			c := []int32{int32(k * step / 8)}
			zz := make([]int32, 1)
			kern.QuantScan(c, zz, []int{0}, qp, 0)
			want := make([]int32, 1)
			Quantize(c, want, qp, 0)
			if zz[0] != want[0] {
				t.Fatalf("qp=%d k=%d: kern %d want %d", qp, k, zz[0], want[0])
			}
		}
	}
}
