package telemetry

import (
	"strings"
	"testing"
)

func TestWriteTextDeterministicAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("fleet.depth").Set(3)
	h := r.Histogram("fleet.wait_seconds", 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var a, b strings.Builder
	if err := r.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("WriteText not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}

	want := `# counters
a.count 1
b.count 2
# gauges
fleet.depth 3
# histograms
fleet.wait_seconds count 3
fleet.wait_seconds sum 5.55
fleet.wait_seconds bucket 0.1 1
fleet.wait_seconds bucket 1 1
fleet.wait_seconds bucket +Inf 1
`
	if a.String() != want {
		t.Errorf("WriteText =\n%s\nwant\n%s", a.String(), want)
	}
}
