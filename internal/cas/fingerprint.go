package cas

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fingerprintTrees are the packages whose source determines encode
// outcomes: the codec itself (profiles, motion, kernels, hardware
// models included), the synthesized inputs, the quality/bitrate
// metrics, and the perf cost model. Any edit under these trees changes
// the fingerprint, which changes every cache key, which turns every
// existing entry into a guaranteed miss — the mechanism that makes
// stale cache hits impossible across encoder versions.
var fingerprintTrees = []string{
	"internal/codec",
	"internal/corpus",
	"internal/metrics",
	"internal/perf",
	"internal/video",
}

// Fingerprint returns the baked-in codec-version fingerprint. It is
// refreshed by `make fingerprint` (go run ./internal/cas/gen) and
// guarded by a golden test that recomputes it from source.
func Fingerprint() string { return codecFingerprint }

// ComputeFingerprint hashes the encode-affecting source trees under
// the module root: every non-test .go file (testdata excluded),
// sorted by slash path, digested as path + content. The result is
// what the generator bakes into fingerprint_gen.go.
func ComputeFingerprint(moduleRoot string) (string, error) {
	h := sha256.New()
	io.WriteString(h, "fingerprint/v1\n")
	var files []string
	for _, tree := range fingerprintTrees {
		root := filepath.Join(moduleRoot, filepath.FromSlash(tree))
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(moduleRoot, path)
			if err != nil {
				return err
			}
			files = append(files, filepath.ToSlash(rel))
			return nil
		})
		if err != nil {
			return "", fmt.Errorf("cas: walking %s: %w", tree, err)
		}
	}
	sort.Strings(files)
	for _, rel := range files {
		data, err := os.ReadFile(filepath.Join(moduleRoot, filepath.FromSlash(rel)))
		if err != nil {
			return "", fmt.Errorf("cas: fingerprinting %s: %w", rel, err)
		}
		fmt.Fprintf(h, "%s %d\n", rel, len(data))
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// FindModuleRoot walks up from dir to the directory containing
// go.mod. The generator and the golden test both use it so the
// fingerprint is always computed against the same tree layout.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("cas: no go.mod above %s", dir)
		}
		dir = parent
	}
}
