package corpus

import (
	"math"

	"vbench/internal/rng"
)

// Video popularity follows a power law with exponential cutoff (Cha et
// al., cited by the paper): most watch time concentrates in a few
// popular videos with a long tail of rarely watched ones. The sharing
// infrastructure uses this to decide which videos earn the expensive
// Popular re-transcode.

// PopularityModel parameterizes the watch-count distribution
// p(rank) ∝ rank^(−Alpha) · exp(−rank/Cutoff).
type PopularityModel struct {
	// Alpha is the power-law exponent (≈2 for user-generated content).
	Alpha float64
	// Cutoff is the exponential cutoff rank.
	Cutoff float64
}

// DefaultPopularity matches the user-generated-content fits of Cha et
// al.: a shallow power law (most mass still in the head, but with a
// meaningful tail) truncated deep in the catalogue.
func DefaultPopularity() PopularityModel {
	return PopularityModel{Alpha: 1.15, Cutoff: 5e5}
}

// Weight returns the relative watch weight of the video at the given
// popularity rank (1 = most popular).
func (m PopularityModel) Weight(rank int) float64 {
	r := float64(rank)
	return math.Pow(r, -m.Alpha) * math.Exp(-r/m.Cutoff)
}

// WatchShare returns the fraction of total watch time captured by the
// top-k videos out of n.
func (m PopularityModel) WatchShare(k, n int) float64 {
	if k > n {
		k = n
	}
	var top, total float64
	for r := 1; r <= n; r++ {
		w := m.Weight(r)
		total += w
		if r <= k {
			top += w
		}
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// SampleViews draws a synthetic view count for a random video,
// following the model (used by examples that simulate upload traffic).
func (m PopularityModel) SampleViews(r *rng.Rand, n int) int64 {
	// Inverse-CDF sampling over ranks, then a Poisson-ish jitter.
	var total float64
	for rank := 1; rank <= n; rank++ {
		total += m.Weight(rank)
	}
	x := r.Float64() * total
	for rank := 1; rank <= n; rank++ {
		x -= m.Weight(rank)
		if x < 0 {
			base := m.Weight(rank) * 1e9
			return int64(base * (0.5 + r.Float64()))
		}
	}
	return 1
}
