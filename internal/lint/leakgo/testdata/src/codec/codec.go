// Package codec is not in leakgo's long-lived set: even an eternal
// goroutine here is out of scope (short-lived workers are joined by
// their callers).
package codec

func pumpForever(ch chan int) {
	go func() {
		for {
			ch <- 1
		}
	}()
}
