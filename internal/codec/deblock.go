package codec

import (
	"vbench/internal/codec/transform"
	"vbench/internal/perf"
	"vbench/internal/video"
)

// In-loop deblocking filter. Block-transform codecs show step
// artifacts at block boundaries at moderate-to-high QP; the filter
// smooths boundary samples when the discontinuity is small enough to
// be a coding artifact rather than a real edge. It runs identically in
// the encoder's reconstruction loop and the decoder, so filtered
// frames remain bit-identical references.

// deblockThresholds derives the filter thresholds from a quantizer:
// alpha bounds the cross-edge step, beta bounds same-side gradients,
// and tc clamps the correction.
func deblockThresholds(qp int) (alpha, beta, tc int) {
	step := int(transform.QStepQ6(qp)) // Q6
	alpha = step >> 6
	alpha += step >> 7 // 1.5 × qstep
	if alpha < 2 {
		alpha = 2
	}
	if alpha > 60 {
		alpha = 60
	}
	beta = alpha/4 + 1
	tc = alpha/6 + 1
	return alpha, beta, tc
}

// deblockFrame filters a padded reconstructed frame in place. qpGrid
// holds the per-macroblock quantizers (wMB×hMB).
func deblockFrame(f *video.Frame, qpGrid []int, wMB, hMB int, c *perf.Counters) {
	// Luma: vertical then horizontal edges on the 8×8 grid.
	deblockPlane(f.Y, f.Width, f.Height, 8, 1, qpGrid, wMB, c)
	// Chroma: macroblock-boundary edges only (8-pixel grid in the
	// half-resolution planes corresponds to 16-pixel luma boundaries).
	deblockPlane(f.Cb, f.ChromaWidth(), f.ChromaHeight(), 8, 2, qpGrid, wMB, c)
	deblockPlane(f.Cr, f.ChromaWidth(), f.ChromaHeight(), 8, 2, qpGrid, wMB, c)
}

// deblockPlane filters one plane. grid is the edge spacing in plane
// pixels; lumaScale is 1 for luma (16-pixel MBs) and 2 for chroma
// (8-pixel MBs in plane coordinates).
func deblockPlane(pix []uint8, w, h, grid, lumaScale int, qpGrid []int, wMB int, c *perf.Counters) {
	mbDim := MBSize / lumaScale
	qpAt := func(x, y int) int {
		mx := x / mbDim
		my := y / mbDim
		idx := my*wMB + mx
		if idx >= len(qpGrid) {
			idx = len(qpGrid) - 1
		}
		return qpGrid[idx]
	}
	var ops int64
	// Vertical edges (filter across columns).
	for x := grid; x < w; x += grid {
		for y := 0; y < h; y++ {
			qp := (qpAt(x-1, y) + qpAt(x, y) + 1) / 2
			alpha, beta, tc := deblockThresholds(qp)
			i := y*w + x
			filterEdge(pix, i-1, i,
				int(pix[i-2]), int(pix[i-1]), int(pix[i]), int(pix[i+1]),
				alpha, beta, tc)
			ops += 4
		}
	}
	// Horizontal edges (filter across rows).
	for y := grid; y < h; y += grid {
		for x := 0; x < w; x++ {
			qp := (qpAt(x, y-1) + qpAt(x, y) + 1) / 2
			alpha, beta, tc := deblockThresholds(qp)
			i := y*w + x
			filterEdge(pix, i-w, i,
				int(pix[i-2*w]), int(pix[i-w]), int(pix[i]), int(pix[i+w]),
				alpha, beta, tc)
			ops += 4
		}
	}
	c.Count(perf.KDeblock, ops)
}

// filterEdge applies the weak deblocking filter across one edge given
// sample values p1 p0 | q0 q1 at indices ip0 (p0) and iq0 (q0).
func filterEdge(pix []uint8, ip0, iq0 int, p1, p0, q0, q1 int, alpha, beta, tc int) {
	dp := p0 - q0
	if dp < 0 {
		dp = -dp
	}
	if dp >= alpha {
		return
	}
	d1 := p1 - p0
	if d1 < 0 {
		d1 = -d1
	}
	d2 := q1 - q0
	if d2 < 0 {
		d2 = -d2
	}
	if d1 >= beta || d2 >= beta {
		return
	}
	delta := ((q0-p0)*4 + (p1 - q1) + 4) >> 3
	if delta > tc {
		delta = tc
	}
	if delta < -tc {
		delta = -tc
	}
	pix[ip0] = clip255i(p0 + delta)
	pix[iq0] = clip255i(q0 - delta)
}

func clip255i(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
