// Package syncx provides the small concurrency primitives the
// benchmark harness builds on: a per-key singleflight memo cache that
// guarantees each key's value is computed exactly once no matter how
// many goroutines ask for it concurrently.
package syncx

import (
	"sync"
	"sync/atomic"
)

// memoEntry is the in-flight or completed computation for one key.
// done is closed when val/err are final.
type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Memo is a concurrency-safe memoization cache with singleflight
// semantics: the first caller of Do for a key runs the function, every
// concurrent caller for the same key blocks until that single run
// finishes and then shares its result. Successful results are cached
// forever; failed computations are forgotten so a later call can
// retry. The zero value is ready to use.
type Memo[K comparable, V any] struct {
	// Size, when set before the Memo's first use, reports the retained
	// size of a completed value; the Memo then maintains Bytes() as
	// values are cached and evicted. Leave nil when byte accounting is
	// not needed.
	Size func(V) int64

	mu      sync.Mutex
	entries map[K]*memoEntry[V]

	hits      atomic.Int64
	misses    atomic.Int64
	inflight  atomic.Int64
	bytes     atomic.Int64
	evictions atomic.Int64
}

// MemoStats is a point-in-time view of a Memo's access counters, the
// observable form of the singleflight guarantee: under concurrency,
// Misses equals the number of unique keys computed (each non-error key
// exactly once), while every other caller scored either a Hit or an
// Inflight join.
type MemoStats struct {
	// Hits counts Do calls that found a completed computation.
	Hits int64
	// Misses counts Do calls that ran the compute function (== fn
	// invocations, including error retries).
	Misses int64
	// Inflight counts Do calls that joined another caller's
	// in-progress computation and blocked for its result.
	Inflight int64
	// Evictions counts completed entries dropped by EvictAll.
	Evictions int64
}

// Stats returns the Memo's current access counters.
func (m *Memo[K, V]) Stats() MemoStats {
	return MemoStats{
		Hits:      m.hits.Load(),
		Misses:    m.misses.Load(),
		Inflight:  m.inflight.Load(),
		Evictions: m.evictions.Load(),
	}
}

// Do returns the cached value for key, computing it with fn if
// needed. fn runs outside the Memo's lock, so distinct keys compute
// concurrently; for a single key fn is invoked at most once per
// non-error result.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.entries == nil {
		m.entries = make(map[K]*memoEntry[V])
	}
	if e, ok := m.entries[key]; ok {
		select {
		case <-e.done:
			m.hits.Add(1)
		default:
			m.inflight.Add(1)
		}
		m.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &memoEntry[V]{done: make(chan struct{})}
	m.entries[key] = e
	m.misses.Add(1)
	m.mu.Unlock()

	e.val, e.err = fn()
	if e.err != nil {
		// Do not cache failures: drop the entry so the next caller
		// retries. Goroutines already waiting on e still observe the
		// error.
		m.mu.Lock()
		delete(m.entries, key)
		m.mu.Unlock()
	} else if m.Size != nil {
		// Account before publishing completion, so an entry EvictAll
		// observes as completed has always been counted.
		m.bytes.Add(m.Size(e.val))
	}
	close(e.done)
	return e.val, e.err
}

// Bytes returns the total retained size of completed entries, as
// reported by Size. Always 0 when Size is nil.
func (m *Memo[K, V]) Bytes() int64 { return m.bytes.Load() }

// EvictAll drops every completed entry, returning the number evicted.
// In-flight computations are kept — their waiters still resolve and
// their results are cached as usual — so EvictAll is safe to call
// concurrently with Do.
func (m *Memo[K, V]) EvictAll() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for key, e := range m.entries {
		select {
		case <-e.done:
		default:
			continue // in-flight: the computing goroutine owns it
		}
		if m.Size != nil {
			m.bytes.Add(-m.Size(e.val))
		}
		delete(m.entries, key)
		n++
	}
	m.evictions.Add(int64(n))
	return n
}

// Get returns the cached value for key, if a completed successful
// computation exists.
func (m *Memo[K, V]) Get(key K) (V, bool) {
	m.mu.Lock()
	e, ok := m.entries[key]
	m.mu.Unlock()
	if !ok {
		return *new(V), false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return *new(V), false
		}
		return e.val, true
	default:
		return *new(V), false
	}
}

// Len reports the number of cached (completed or in-flight) keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
