# Tier-1 verification gate (see ROADMAP.md). `make check` is what CI
# and every PR must keep green.

GO ?= go

.PHONY: check fmt vet lint build test race bench benchall e2e fingerprint

check: fmt vet lint build race e2e

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# vet runs under both build-tag configurations: the default build
# (debug HTTP endpoint in) and -tags vbench_nodebug (endpoint
# stripped), so neither bitrots.
vet:
	$(GO) vet ./...
	$(GO) vet -tags vbench_nodebug ./...

# lint runs the project analyzers (detorder, spanpair, metricname,
# lockflow — see docs/LINT.md) through the go vet driver so results
# cache per package, under both build-tag configurations like vet.
lint:
	$(GO) build -o bin/vbenchlint ./cmd/vbenchlint
	$(GO) vet -vettool=$(CURDIR)/bin/vbenchlint ./...
	$(GO) vet -vettool=$(CURDIR)/bin/vbenchlint -tags vbench_nodebug ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# e2e runs the loopback master/worker smoke: 50 jobs across two
# vbenchd workers with one SIGKILLed mid-lease — every job must drain
# exactly once (see scripts/e2e_fleet.sh).
e2e:
	./scripts/e2e_fleet.sh

# bench runs the harness-grid scaling benchmark, the telemetry
# overhead benchmark (acceptance budget: "on" < 5% over "off"), the
# encode allocation benchmark with wavefront off and on (budget in
# ALLOC_BUDGET.json), the wavefront row-parallel encode benchmark,
# the transcode-cache hit/miss benchmarks (internal/cas), and the
# codec kernel micro-benchmarks (scalar vs SWAR, internal/codec/kern),
# and records the machine-readable report in BENCH_harness.json.
bench:
	$(GO) test -bench 'HarnessGrid|TelemetryOverhead|EncodeAllocs|WavefrontEncode|CacheHit|CacheMiss|SAD|SATD|DCT|Quant|Interp' -benchmem -run '^$$' . ./internal/codec/kern \
		| $(GO) run ./cmd/benchjson -o BENCH_harness.json

# fingerprint regenerates the codec-version fingerprint baked into
# every cache key (internal/cas/fingerprint_gen.go). Run after any
# change under the fingerprinted trees (internal/{codec,corpus,
# metrics,perf,video}); TestFingerprintCurrent fails until you do.
fingerprint:
	$(GO) run ./internal/cas/gen

# benchall runs every benchmark in the repository.
benchall:
	$(GO) test -bench=. -benchmem -run=^$$ .
