// Package metricname enforces the metric naming schema documented in
// docs/FORMAT.md: every name registered through the telemetry metric
// constructors must be dotted lower_snake_case with at least two
// segments (subsystem prefix plus metric), e.g. "codec.encodes" or
// "harness.memo.seqs.hits". A misnamed metric is not an error at
// runtime — it just silently fragments the stats export — so the
// schema is machine-checked here instead.
//
// Only constant string arguments are checked; dynamically built names
// (fmt.Sprintf, base+".hits") are out of scope. Test files are
// skipped: scratch registries in tests use deliberately short names.
package metricname

import (
	"go/ast"
	"go/constant"
	"regexp"

	"vbench/internal/lint/analysis"
)

// Analyzer is the metricname pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "checks metric names passed to telemetry constructors against the docs/FORMAT.md schema",
	Run:  run,
}

// namePattern is the FORMAT.md schema: dot-separated segments, each
// lower_snake_case starting with a letter, two segments minimum.
var namePattern = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*(\.[a-z][a-z0-9]*(_[a-z0-9]+)*)+$`)

// constructors maps the telemetry functions and methods whose first
// argument is a metric name.
var constructors = map[string]bool{
	"GetCounter":   true,
	"GetGauge":     true,
	"GetHistogram": true,
	"Counter":      true,
	"Gauge":        true,
	"GaugeFunc":    true,
	"Histogram":    true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if analysis.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || !analysis.FromPackage(fn, "telemetry") || !constructors[fn.Name()] {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.TypesInfo.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic name: out of scope
			}
			name := constant.StringVal(tv.Value)
			if !namePattern.MatchString(name) {
				pass.Reportf(arg.Pos(), "metric name %q does not match the dotted lower_snake_case schema (see docs/FORMAT.md), e.g. \"codec.encodes\"", name)
			}
			return true
		})
	}
	return nil
}
