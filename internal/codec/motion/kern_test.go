package motion

import (
	"math/rand"
	"testing"

	"vbench/internal/perf"
)

// randPlane builds a plane with one of several textures; tiny planes
// force the clamped edge paths, larger ones the interior kernels.
func randPlane(rng *rand.Rand, w, h int, mode int) Plane {
	pix := make([]uint8, w*h)
	switch mode {
	case 0:
		rng.Read(pix)
	case 1:
		for i := range pix {
			pix[i] = uint8(255 * rng.Intn(2))
		}
	default:
		base := uint8(rng.Intn(256))
		for i := range pix {
			pix[i] = base + uint8(rng.Intn(5)) - 2
		}
	}
	return Plane{Pix: pix, W: w, H: h}
}

func TestSADMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 3000; iter++ {
		W := 20 + rng.Intn(40)
		H := 20 + rng.Intn(30)
		cur := randPlane(rng, W, H, iter%3)
		ref := randPlane(rng, W, H, (iter+1)%3)
		bw := []int{4, 8, 16}[rng.Intn(3)]
		bh := []int{4, 8, 16}[rng.Intn(3)]
		cx := rng.Intn(W - bw + 1)
		cy := rng.Intn(H - bh + 1)
		// Reference positions range past every edge.
		rx := rng.Intn(W+2*bw) - bw
		ry := rng.Intn(H+2*bh) - bh

		want := sadRef(cur, cx, cy, ref, rx, ry, bw, bh)
		if got := SAD(cur, cx, cy, ref, rx, ry, bw, bh); got != want {
			t.Fatalf("SAD (%d,%d)->(%d,%d) %dx%d: got %d want %d", cx, cy, rx, ry, bw, bh, got, want)
		}

		exact := want
		for _, th := range []int64{0, 1, exact / 2, exact, exact + 1, 1 << 40} {
			got, early := sadThresh(cur, cx, cy, ref, rx, ry, bw, bh, th)
			if !early && got != exact {
				t.Fatalf("sadThresh(th=%d): complete scan %d want %d", th, got, exact)
			}
			if early && (got < th || exact < th) {
				t.Fatalf("sadThresh(th=%d): bad abort got %d exact %d", th, got, exact)
			}
		}
	}
}

func randMV(rng *rand.Rand, r int) MV {
	return MV{int32(rng.Intn(8*r+1) - 4*r), int32(rng.Intn(8*r+1) - 4*r)}
}

func TestPredictMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for iter := 0; iter < 3000; iter++ {
		W := 18 + rng.Intn(40)
		H := 18 + rng.Intn(30)
		ref := randPlane(rng, W, H, iter%3)
		bw := []int{4, 8, 16}[rng.Intn(3)]
		bh := bw
		bx := rng.Intn(W+bw) - bw/2 // straddles edges
		by := rng.Intn(H+bh) - bh/2
		mv := randMV(rng, 8)

		got := make([]uint8, bw*bh)
		want := make([]uint8, bw*bh)
		PredictLuma(got, ref, bx, by, mv, bw, bh)
		predictLumaRef(want, ref, bx, by, mv, bw, bh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PredictLuma (%d,%d) mv=%v %dx%d [%d]: got %d want %d", bx, by, mv, bw, bh, i, got[i], want[i])
			}
		}

		PredictChroma(got, ref, bx, by, mv, bw, bh)
		predictChromaRef(want, ref, bx, by, mv, bw, bh)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("PredictChroma (%d,%d) mv=%v %dx%d [%d]: got %d want %d", bx, by, mv, bw, bh, i, got[i], want[i])
			}
		}
	}
}

func TestSadSubpelMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 3000; iter++ {
		W := 24 + rng.Intn(40)
		H := 24 + rng.Intn(30)
		cur := randPlane(rng, W, H, iter%3)
		ref := randPlane(rng, W, H, (iter+2)%3)
		bw, bh := 16, 16
		cx := rng.Intn(W - bw + 1)
		cy := rng.Intn(H - bh + 1)
		mv := randMV(rng, 6)

		scratch := make([]uint8, bw*bh)
		want := sadSubpelRef(cur, cx, cy, ref, mv, bw, bh, make([]uint8, bw*bh))
		if got := sadSubpel(cur, cx, cy, ref, mv, bw, bh, scratch); got != want {
			t.Fatalf("sadSubpel (%d,%d) mv=%v: got %d want %d", cx, cy, mv, got, want)
		}
		for _, th := range []int64{1, want / 2, want, want + 1} {
			got, early := sadSubpelThresh(cur, cx, cy, ref, mv, bw, bh, scratch, th)
			if !early && got != want {
				t.Fatalf("sadSubpelThresh(th=%d): complete scan %d want %d", th, got, want)
			}
			if early && (got < th || want < th) {
				t.Fatalf("sadSubpelThresh(th=%d): bad abort got %d exact %d", th, got, want)
			}
		}
	}
}

// searchRef reimplements the pre-kernel Search verbatim (full SAD on
// every candidate, no early termination) on top of the preserved
// scalar references. TestSearchMatchesRef proves the thresholded
// search follows the identical trajectory: same vector, same cost,
// same perf counter values.
func searchRef(cur Plane, bx, by int, ref Plane, pred MV, bw, bh int, p Params, sc *Scratch, c *perf.Counters) (MV, int64) {
	blockOps := int64(bw * bh)
	evals := 0
	cost := func(mx, my int) int64 {
		evals++
		sad := sadRef(cur, bx, by, ref, bx+mx, by+my, bw, bh)
		mv := MV{int32(mx) * 4, int32(my) * 4}
		return sad + p.Lambda*mvdBits(mv, pred)/16
	}
	startX := clampInt(int(pred.X)/4, -p.Range, p.Range)
	startY := clampInt(int(pred.Y)/4, -p.Range, p.Range)
	bestX, bestY := 0, 0
	bestCost := cost(0, 0)
	if startX != 0 || startY != 0 {
		if cc := cost(startX, startY); cc < bestCost {
			bestCost, bestX, bestY = cc, startX, startY
		}
	}
	patterns := func(coarse, fine [][2]int) {
		for iter := 0; iter < 4*p.Range+16; iter++ {
			improved := false
			for _, d := range coarse {
				x, y := bestX+d[0], bestY+d[1]
				if x < -p.Range || x > p.Range || y < -p.Range || y > p.Range {
					continue
				}
				if cc := cost(x, y); cc < bestCost {
					bestCost, bestX, bestY = cc, x, y
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		for _, d := range fine {
			x, y := bestX+d[0], bestY+d[1]
			if x < -p.Range || x > p.Range || y < -p.Range || y > p.Range {
				continue
			}
			if cc := cost(x, y); cc < bestCost {
				bestCost, bestX, bestY = cc, x, y
			}
		}
	}
	switch p.Kind {
	case SearchFull:
		for my := -p.Range; my <= p.Range; my++ {
			for mx := -p.Range; mx <= p.Range; mx++ {
				if mx == 0 && my == 0 {
					continue
				}
				if cc := cost(mx, my); cc < bestCost {
					bestCost, bestX, bestY = cc, mx, my
				}
			}
		}
	case SearchDiamond:
		patterns(diamondLarge[:], diamondSmall[:])
	case SearchHex:
		patterns(hexPattern[:], diamondSmall[:])
	}
	c.Count(perf.KSAD, blockOps*int64(evals))
	c.DataDepBranches += int64(evals)

	best := MV{int32(bestX) * 4, int32(bestY) * 4}
	if p.SubPel == 0 {
		return best, bestCost
	}
	scratch := sc.predBuf(bw * bh)
	subEvals := 0
	steps := [2]int32{2, 1}
	nSteps := 1
	if p.SubPel >= 2 {
		nSteps = 2
	}
	for _, step := range steps[:nSteps] {
		improved := true
		for improved {
			improved = false
			for _, d := range neighbours8 {
				cand := MV{best.X + d[0]*step, best.Y + d[1]*step}
				if int(cand.X)/4 < -p.Range || int(cand.X)/4 > p.Range ||
					int(cand.Y)/4 < -p.Range || int(cand.Y)/4 > p.Range {
					continue
				}
				subEvals++
				cc := sadSubpelRef(cur, bx, by, ref, cand, bw, bh, scratch) + p.Lambda*mvdBits(cand, pred)/16
				if cc < bestCost {
					bestCost = cc
					best = cand
					improved = true
				}
			}
		}
	}
	c.Count(perf.KInterp, blockOps*int64(subEvals)*4)
	c.Count(perf.KSAD, blockOps*int64(subEvals))
	c.DataDepBranches += int64(subEvals)
	return best, bestCost
}

func TestSearchMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	kinds := []SearchKind{SearchDiamond, SearchHex, SearchFull}
	for iter := 0; iter < 300; iter++ {
		W := 40 + rng.Intn(40)
		H := 40 + rng.Intn(24)
		cur := randPlane(rng, W, H, iter%3)
		ref := randPlane(rng, W, H, (iter+1)%3)
		bw, bh := 16, 16
		bx := rng.Intn(W - bw + 1)
		by := rng.Intn(H - bh + 1)
		pred := randMV(rng, 4)
		p := Params{
			Kind:   kinds[iter%len(kinds)],
			Range:  4 + rng.Intn(12),
			SubPel: iter % 3,
			Lambda: int64(rng.Intn(200)),
		}
		if p.Kind == SearchFull {
			p.Range = 4 // keep the exhaustive case fast
		}

		var cGot, cWant perf.Counters
		var scGot, scWant Scratch
		gotMV, gotCost := Search(cur, bx, by, ref, pred, bw, bh, p, &scGot, &cGot)
		wantMV, wantCost := searchRef(cur, bx, by, ref, pred, bw, bh, p, &scWant, &cWant)
		if gotMV != wantMV || gotCost != wantCost {
			t.Fatalf("Search %v range=%d subpel=%d λ=%d at (%d,%d): got %v/%d want %v/%d",
				p.Kind, p.Range, p.SubPel, p.Lambda, bx, by, gotMV, gotCost, wantMV, wantCost)
		}
		if cGot != cWant {
			t.Fatalf("Search counters diverged: got %+v want %+v", cGot, cWant)
		}
	}
}

func TestPredSADThreshMatchesPredSAD(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for iter := 0; iter < 1000; iter++ {
		W, H := 48, 48
		cur := randPlane(rng, W, H, iter%3)
		ref := randPlane(rng, W, H, (iter+1)%3)
		bx := rng.Intn(W - 16 + 1)
		by := rng.Intn(H - 16 + 1)
		mv := randMV(rng, 6)
		scratch := make([]uint8, 16*16)

		var c1, c2 perf.Counters
		exact := PredSAD(cur, bx, by, ref, mv, 16, 16, scratch, &c1)
		for _, th := range []int64{1, exact, exact + 1, 1 << 40} {
			var c perf.Counters
			got, early := PredSADThresh(cur, bx, by, ref, mv, 16, 16, scratch, th, &c)
			if !early && got != exact {
				t.Fatalf("PredSADThresh(th=%d): %d want %d", th, got, exact)
			}
			if early && (got < th || exact < th) {
				t.Fatalf("PredSADThresh(th=%d): bad abort %d exact %d", th, got, exact)
			}
			c2 = c
			if c1 != c2 {
				t.Fatalf("PredSADThresh counters %+v differ from PredSAD %+v", c2, c1)
			}
		}
	}
}
