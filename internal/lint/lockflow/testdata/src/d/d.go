// Package d exercises lockflow's check-then-act detection.
package d

import "sync"

type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func compute(k string) int { return len(k) }

// checkThenAct is the hazard: the lock is dropped between the miss
// check and the fill, so two goroutines can both miss and both fill.
func (c *cache) checkThenAct(k string) int {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	v = compute(k)
	c.mu.Lock()
	c.m[k] = v // want `map c.m is checked in one critical section and filled in a later one without re-checking`
	c.mu.Unlock()
	return v
}

// doubleChecked re-reads under the write lock before filling.
func (c *cache) doubleChecked(k string) int {
	c.mu.RLock()
	v, ok := c.m[k]
	c.mu.RUnlock()
	if ok {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[k]; ok {
		return v
	}
	v = compute(k)
	c.m[k] = v
	return v
}

// singleSection does the check and the fill under one lock.
func (c *cache) singleSection(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.m[k]; ok {
		return v
	}
	v := compute(k)
	c.m[k] = v
	return v
}

type twoLocks struct {
	muA, muB sync.Mutex
	a, b     map[string]int
}

// differentMutexes guards each map with its own mutex; reading a
// under muA and writing b under muB is not a check-then-act pair.
func (t *twoLocks) differentMutexes(k string) {
	t.muA.Lock()
	_, ok := t.a[k]
	t.muA.Unlock()
	if !ok {
		t.muB.Lock()
		t.b[k] = 1
		t.muB.Unlock()
	}
}

// suppressed documents a tolerated benign race.
func (c *cache) suppressed(k string) {
	c.mu.RLock()
	_, ok := c.m[k]
	c.mu.RUnlock()
	if !ok {
		c.mu.Lock()
		//lint:ignore lockflow idempotent fill; duplicate computation is acceptable here
		c.m[k] = compute(k)
		c.mu.Unlock()
	}
}
