package fleet

import (
	"bytes"
	"container/heap"
	"fmt"
	"sync"
	"time"

	"vbench/internal/cas"
	"vbench/internal/telemetry"
)

// Options parameterizes a Queue. The zero value selects sane wall
// service defaults.
type Options struct {
	// Clock drives all scheduling decisions; nil selects WallClock.
	Clock Clock
	// LeaseTTL is the heartbeat deadline of a lease; a worker that
	// goes silent for longer loses the job. Default 10s.
	LeaseTTL time.Duration
	// MaxAttempts bounds leases per job; a transient failure or
	// expiry on the last attempt is terminal. Default 3.
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential requeue
	// backoff: attempt n waits BackoffBase << (n-1), capped at
	// BackoffMax. Defaults 250ms and 30s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics receives the fleet.* counters and gauges; nil selects
	// telemetry.Default.
	Metrics *telemetry.Registry
	// RecordLog enables the job-state transition log (used by the
	// determinism tests and by vbenchd master -log-transitions).
	RecordLog bool
	// OnTransition observes every validated state change (including
	// submission, as from "none"). It is invoked under the queue lock
	// with a detached job copy, in transition order; it must be fast
	// and must not call back into the queue. Server.EnableTracing uses
	// it to open and close master-side lease spans.
	OnTransition func(j Job, from, to, reason string)
	// Cache, when non-nil, is the shared content-addressed transcode
	// store. Submissions whose result is already stored complete
	// instantly without a lease, and concurrent submissions of the
	// same cache key collapse onto one leader job (the rest park as
	// followers and settle from the leader's result).
	Cache *cas.Store
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = WallClock{}
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 250 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 30 * time.Second
	}
	if o.Metrics == nil {
		o.Metrics = telemetry.Default
	}
	return o
}

// Stats is a consistent snapshot of the queue's accounting. All
// fields are derived from state transitions, so for a fixed workload
// and fault pattern they are identical regardless of worker count or
// completion order — the property the golden-stat tests pin.
type Stats struct {
	Submitted int `json:"submitted"`
	Pending   int `json:"pending"`
	Leased    int `json:"leased"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`

	Leases        int `json:"leases"`
	Completions   int `json:"completions"`
	Retries       int `json:"retries"`
	LeaseExpiries int `json:"lease_expiries"`
	DuplicateAcks int `json:"duplicate_acks"`
	StaleAcks     int `json:"stale_acks"`
	// CacheDedupHits counts jobs completed without a worker lease:
	// submissions served straight from the transcode cache plus
	// followers settled from a deduplicated leader's result.
	CacheDedupHits int `json:"cache_dedup_hits"`
}

// Queue is the scheduler core: a durable in-memory job queue whose
// every state change is validated against the Job state machine. It
// is safe for concurrent use; all methods take the queue lock, and
// hot-path metric updates are lock-free atomics on cached handles.
type Queue struct {
	mu       sync.Mutex
	opt      Options
	start    time.Time
	jobs     []*Job // jobs[i].ID == i+1
	ready    readyHeap
	exp      expiryHeap
	stats    Stats
	log      bytes.Buffer
	eventSeq int64 // queue-wide timeline sequence
	workers  map[string]*workerAccount

	// Dedup index: while a leader job for a cache key is in flight
	// (pending or leased, not yet terminal), later submissions of the
	// same key park as followers instead of entering the ready heap.
	dedupLeader map[cas.Key]int // key -> in-flight leader job ID
	dedupKey    map[int]cas.Key // leader job ID -> its key
	followers   map[int][]int   // leader job ID -> parked follower IDs

	mSubmitted, mLeases, mCompletions, mFailures *telemetry.Counter
	mRetries, mExpiries, mDupAcks, mStaleAcks    *telemetry.Counter
	mHeartbeats, mTimelineEvents, mCacheDedup    *telemetry.Counter
	gPending, gLeased, gDone, gFailed, gDepth    *telemetry.Gauge
	gWorkersSeen                                 *telemetry.Gauge
}

// workerAccount is the master's per-worker liveness and activity
// ledger, fed by every request a worker makes. It observes the
// workers; it never steers scheduling, so the deterministic twin's
// transition logs and stats are unaffected by it.
type workerAccount struct {
	lastSeen                                  time.Time
	leases, heartbeats, completions, failures int64
}

// NewQueue returns an empty queue.
func NewQueue(opt Options) *Queue {
	opt = opt.withDefaults()
	q := &Queue{
		opt:         opt,
		start:       opt.Clock.Now(),
		workers:     map[string]*workerAccount{},
		dedupLeader: map[cas.Key]int{},
		dedupKey:    map[int]cas.Key{},
		followers:   map[int][]int{},
	}
	q.bindMetrics()
	return q
}

func (q *Queue) bindMetrics() {
	r := q.opt.Metrics
	q.mSubmitted = r.Counter("fleet.jobs_submitted")
	q.mLeases = r.Counter("fleet.leases")
	q.mCompletions = r.Counter("fleet.completions")
	q.mFailures = r.Counter("fleet.failures")
	q.mRetries = r.Counter("fleet.retries")
	q.mExpiries = r.Counter("fleet.lease_expiries")
	q.mDupAcks = r.Counter("fleet.duplicate_acks")
	q.mStaleAcks = r.Counter("fleet.stale_acks")
	q.mHeartbeats = r.Counter("fleet.heartbeats")
	q.mTimelineEvents = r.Counter("fleet.timeline_events")
	q.mCacheDedup = r.Counter("fleet.cache_dedup_hits")
	q.gWorkersSeen = r.Gauge("fleet.workers_seen")
	q.gPending = r.Gauge("fleet.jobs_pending")
	q.gLeased = r.Gauge("fleet.jobs_leased")
	q.gDone = r.Gauge("fleet.jobs_done")
	q.gFailed = r.Gauge("fleet.jobs_failed")
	q.gDepth = r.Gauge("fleet.queue_depth")
}

// Metrics returns the registry the queue reports into.
func (q *Queue) Metrics() *telemetry.Registry { return q.opt.Metrics }

// LeaseTTL returns the configured lease duration (advertised to
// workers so they can size their heartbeat interval).
func (q *Queue) LeaseTTL() time.Duration { return q.opt.LeaseTTL }

func (q *Queue) now() time.Time { return q.opt.Clock.Now() }

// setState performs one validated transition and all the bookkeeping
// that hangs off it: per-state gauges, the transition log, the job's
// event timeline, and the per-state counts in Stats. Callers hold
// q.mu.
func (q *Queue) setState(j *Job, to State, reason string) {
	from := j.State
	if !validEdge[from][to] {
		panic(fmt.Sprintf("fleet: invalid job state transition %v -> %v (job %d, reason %s)", from, to, j.ID, reason))
	}
	q.countState(from, -1)
	j.State = to
	q.countState(to, +1)
	q.record(j, from.String(), to.String(), reason)
}

// record funnels every state change — setState edges plus submission
// — into the three observability sinks: the byte-stable transition
// log, the job's bounded event timeline, and the optional transition
// observer. Callers hold q.mu.
func (q *Queue) record(j *Job, from, to, reason string) {
	q.logTransition(j, from, to, reason)
	q.recordTimeline(j, from, to, reason)
	if q.opt.OnTransition != nil {
		q.opt.OnTransition(j.clone(), from, to, reason)
	}
}

// touchWorker updates worker's liveness ledger. Callers hold q.mu and
// then bump the relevant per-activity counter on the returned account.
func (q *Queue) touchWorker(worker string) *workerAccount {
	a, ok := q.workers[worker]
	if !ok {
		a = &workerAccount{}
		q.workers[worker] = a
		q.gWorkersSeen.Set(float64(len(q.workers)))
	}
	a.lastSeen = q.now()
	return a
}

// countState maintains the per-state tallies and gauges.
func (q *Queue) countState(s State, d int) {
	switch s {
	case Pending:
		q.stats.Pending += d
		q.gPending.Set(float64(q.stats.Pending))
	case Leased:
		q.stats.Leased += d
		q.gLeased.Set(float64(q.stats.Leased))
	case Done:
		q.stats.Done += d
		q.gDone.Set(float64(q.stats.Done))
	case Failed:
		q.stats.Failed += d
		q.gFailed.Set(float64(q.stats.Failed))
	}
	q.gDepth.Set(float64(q.stats.Pending + q.stats.Leased))
}

// logTransition appends one fixed-format line to the transition log.
// The timestamp is seconds since the queue started, so simulated runs
// produce byte-identical logs independent of wall time.
func (q *Queue) logTransition(j *Job, from, to, reason string) {
	if !q.opt.RecordLog {
		return
	}
	w := j.Worker
	if w == "" {
		w = "-"
	}
	fmt.Fprintf(&q.log, "t=%.3f job=%d attempt=%d %s>%s reason=%s worker=%s\n",
		q.now().Sub(q.start).Seconds(), j.ID, j.Attempt, from, to, reason, w)
}

// SetOnTransition installs (or, with nil, removes) the transition
// observer after construction; see Options.OnTransition for the
// contract. Server.EnableTracing uses it.
func (q *Queue) SetOnTransition(fn func(j Job, from, to, reason string)) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.opt.OnTransition = fn
}

// TransitionLog returns a copy of the recorded transition log.
func (q *Queue) TransitionLog() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.log.String()
}

// Submit validates and enqueues a job, returning its ID (IDs are
// dense, 1-based, in submission order). With a transcode cache
// configured, a submission whose result is already stored completes
// immediately (no lease is ever granted), and a submission whose key
// matches an in-flight job parks as a follower and settles when that
// leader resolves.
func (q *Queue) Submit(spec JobSpec) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	// Consult the cache before taking the queue lock: the disk tier
	// does real I/O and must never run under q.mu.
	var key cas.Key
	var cached *cas.Outcome
	keyed := false
	if q.opt.Cache != nil {
		if k, ok := SpecCacheKey(spec); ok {
			key, keyed = k, true
			if o, ok := q.opt.Cache.Get(k); ok {
				cached = o
			}
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	j := &Job{
		ID:          len(q.jobs) + 1,
		Spec:        spec,
		State:       Pending,
		SubmittedAt: now,
		ReadyAt:     now,
	}
	q.jobs = append(q.jobs, j)
	q.stats.Submitted++
	q.mSubmitted.Inc()
	q.countState(Pending, +1)
	q.record(j, "none", "pending", "submit")
	switch {
	case cached != nil:
		res := resultFromOutcome(cached)
		q.completeUnleasedLocked(j, res, "cache_hit")
	case keyed:
		if leader, ok := q.dedupLeader[key]; ok {
			j.DedupOf = leader
			q.followers[leader] = append(q.followers[leader], j.ID)
			q.record(j, "pending", "pending", "dedup_follower")
			break // parked: never enters the ready heap
		}
		q.dedupLeader[key] = j.ID
		q.dedupKey[j.ID] = key
		heap.Push(&q.ready, readyEntry{at: j.ReadyAt, id: j.ID})
	default:
		heap.Push(&q.ready, readyEntry{at: j.ReadyAt, id: j.ID})
	}
	return j.ID, nil
}

// completeUnleasedLocked finishes a pending job from a cached result,
// without a lease. Callers hold q.mu.
func (q *Queue) completeUnleasedLocked(j *Job, res Result, reason string) {
	res.Worker = "cache"
	res.Attempt = 0
	j.Result = &res
	j.Worker = "cache"
	j.DoneAt = q.now()
	q.setState(j, Done, reason)
	j.Completions++
	q.stats.Completions++
	q.mCompletions.Inc()
	q.stats.CacheDedupHits++
	q.mCacheDedup.Inc()
}

// dropLeaderLocked removes a resolved leader from the dedup index and
// returns its still-pending followers. A leader may have followers
// without a registered key (a snapshot restored without a cache);
// the followers still resolve through it. Callers hold q.mu.
func (q *Queue) dropLeaderLocked(leader *Job) []int {
	if key, ok := q.dedupKey[leader.ID]; ok {
		delete(q.dedupKey, leader.ID)
		if q.dedupLeader[key] == leader.ID {
			delete(q.dedupLeader, key)
		}
	}
	ids := q.followers[leader.ID]
	delete(q.followers, leader.ID)
	live := ids[:0]
	for _, id := range ids {
		if q.jobs[id-1].State == Pending {
			live = append(live, id)
		}
	}
	return live
}

// settleFollowersLocked completes every follower parked behind a
// just-completed leader, copying its result. Callers hold q.mu.
func (q *Queue) settleFollowersLocked(leader *Job) {
	if leader.Result == nil {
		q.dropLeaderLocked(leader)
		return
	}
	for _, id := range q.dropLeaderLocked(leader) {
		f := q.jobs[id-1]
		res := *leader.Result
		q.completeUnleasedLocked(f, res, "cache_dedup")
	}
}

// promoteFollowerLocked reacts to a leader failing terminally: the
// oldest pending follower becomes the new leader (its own attempts
// start fresh) and re-enters the ready heap; the rest re-park behind
// it. Callers hold q.mu.
func (q *Queue) promoteFollowerLocked(leader *Job) {
	key, hasKey := q.dedupKey[leader.ID]
	ids := q.dropLeaderLocked(leader)
	if len(ids) == 0 {
		return
	}
	next := q.jobs[ids[0]-1]
	next.DedupOf = 0
	next.ReadyAt = q.now()
	if hasKey {
		q.dedupLeader[key] = next.ID
		q.dedupKey[next.ID] = key
	}
	rest := append([]int(nil), ids[1:]...)
	q.followers[next.ID] = rest
	for _, id := range rest {
		q.jobs[id-1].DedupOf = next.ID
	}
	heap.Push(&q.ready, readyEntry{at: next.ReadyAt, id: next.ID})
	q.record(next, "pending", "pending", "dedup_promoted")
}

// get returns the job record or an error for an unknown ID. Callers
// hold q.mu.
func (q *Queue) get(id int) (*Job, error) {
	if id < 1 || id > len(q.jobs) {
		return nil, fmt.Errorf("fleet: unknown job %d", id)
	}
	return q.jobs[id-1], nil
}

// Lease hands the oldest ready pending job to worker, starting its
// next attempt under a fresh heartbeat deadline. ok is false when
// nothing is leasable right now (the queue may still hold jobs in
// backoff or behind other leases).
func (q *Queue) Lease(worker string) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	acct := q.touchWorker(worker) // a polling worker is a live worker
	q.expireLocked(now)
	for q.ready.Len() > 0 {
		e := q.ready[0]
		if e.at.After(now) {
			break // earliest ready time still in the future
		}
		heap.Pop(&q.ready)
		j := q.jobs[e.id-1]
		// Lazy deletion: the entry is stale if the job moved on (or
		// was requeued with a different ready time) since it was
		// pushed.
		if j.State != Pending || !j.ReadyAt.Equal(e.at) {
			continue
		}
		j.Attempt++
		j.Worker = worker
		j.LeaseExpiry = now.Add(q.opt.LeaseTTL)
		j.LeasedAt = now
		if j.StartedAt.IsZero() {
			j.StartedAt = now
		}
		q.setState(j, Leased, "lease")
		q.stats.Leases++
		q.mLeases.Inc()
		acct.leases++
		heap.Push(&q.exp, expiryEntry{at: j.LeaseExpiry, id: j.ID, attempt: j.Attempt})
		return j.clone(), true
	}
	return Job{}, false
}

// Heartbeat extends the lease held by worker for the given attempt.
// An error means the lease is no longer current — the worker should
// abandon the job (its eventual completion would be ignored as
// stale).
func (q *Queue) Heartbeat(id, attempt int, worker string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.touchWorker(worker).heartbeats++
	q.mHeartbeats.Inc()
	j, err := q.get(id)
	if err != nil {
		return err
	}
	if j.State != Leased || j.Attempt != attempt || j.Worker != worker {
		return fmt.Errorf("fleet: job %d attempt %d no longer leased to %s (state %v, attempt %d)",
			id, attempt, worker, j.State, j.Attempt)
	}
	j.LeaseExpiry = q.now().Add(q.opt.LeaseTTL)
	heap.Push(&q.exp, expiryEntry{at: j.LeaseExpiry, id: j.ID, attempt: j.Attempt})
	return nil
}

// Complete applies a completion idempotently. Exactly one completion
// per job is applied (applied == true); re-acknowledging a done job
// is a harmless duplicate, and acknowledging a lapsed attempt (the
// lease expired and the job moved on) is stale — both are counted
// and ignored, never an error, so workers can retry acks safely.
func (q *Queue) Complete(id, attempt int, worker string, res Result) (applied bool, err error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.touchWorker(worker).completions++
	j, err := q.get(id)
	if err != nil {
		return false, err
	}
	switch {
	case j.State == Done:
		j.DupAcks++
		q.stats.DuplicateAcks++
		q.mDupAcks.Inc()
		return false, nil
	case j.State == Leased && j.Attempt == attempt:
		res.Worker = worker
		res.Attempt = attempt
		j.Result = &res
		j.DoneAt = q.now()
		j.Worker = worker
		q.setState(j, Done, "complete")
		j.Completions++
		q.stats.Completions++
		q.mCompletions.Inc()
		q.settleFollowersLocked(j)
		return true, nil
	default:
		j.StaleAcks++
		q.stats.StaleAcks++
		q.mStaleAcks.Inc()
		return false, nil
	}
}

// Fail reports an execution failure for an attempt. Terminal errors
// (and transient errors on the final attempt) fail the job; earlier
// transient errors requeue it with exponential backoff. Stale and
// duplicate reports are counted and ignored like in Complete.
func (q *Queue) Fail(id, attempt int, worker string, terminal bool, msg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.touchWorker(worker).failures++
	j, err := q.get(id)
	if err != nil {
		return err
	}
	if j.State != Leased || j.Attempt != attempt {
		if j.State == Done {
			j.DupAcks++
			q.stats.DuplicateAcks++
			q.mDupAcks.Inc()
		} else {
			j.StaleAcks++
			q.stats.StaleAcks++
			q.mStaleAcks.Inc()
		}
		return nil
	}
	j.LastErr = msg
	if terminal {
		q.setState(j, Failed, "terminal_error")
		q.mFailures.Inc()
		q.promoteFollowerLocked(j)
		return nil
	}
	q.requeueLocked(j, "transient_error")
	return nil
}

// requeueLocked moves a leased job back to pending with backoff, or
// to failed when its attempts are exhausted. Callers hold q.mu.
func (q *Queue) requeueLocked(j *Job, reason string) {
	if j.Attempt >= q.opt.MaxAttempts {
		q.setState(j, Failed, reason+"_retries_exhausted")
		q.mFailures.Inc()
		q.promoteFollowerLocked(j)
		return
	}
	j.ReadyAt = q.now().Add(q.backoff(j.Attempt))
	j.Retries++
	q.setState(j, Pending, reason)
	q.stats.Retries++
	q.mRetries.Inc()
	heap.Push(&q.ready, readyEntry{at: j.ReadyAt, id: j.ID})
}

// backoff returns the requeue delay after the given failed attempt.
func (q *Queue) backoff(attempt int) time.Duration {
	d := q.opt.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= q.opt.BackoffMax {
			return q.opt.BackoffMax
		}
	}
	if d > q.opt.BackoffMax {
		d = q.opt.BackoffMax
	}
	return d
}

// ExpireLeases requeues every job whose heartbeat deadline has
// passed. Lease and the master's periodic sweep call it; the sim twin
// calls it implicitly through Lease.
func (q *Queue) ExpireLeases() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.expireLocked(q.now())
}

// expireLocked processes the expiry heap up to now. Entries are lazy:
// a heartbeat pushes a new entry and the superseded one is skipped
// when popped. Callers hold q.mu.
func (q *Queue) expireLocked(now time.Time) {
	for q.exp.Len() > 0 {
		e := q.exp[0]
		if e.at.After(now) {
			return
		}
		heap.Pop(&q.exp)
		j := q.jobs[e.id-1]
		if j.State != Leased || j.Attempt != e.attempt || j.LeaseExpiry.After(now) {
			continue // superseded by a heartbeat, or the attempt already resolved
		}
		j.Expiries++
		q.stats.LeaseExpiries++
		q.mExpiries.Inc()
		j.LastErr = fmt.Sprintf("lease expired (worker %s, attempt %d)", j.Worker, j.Attempt)
		q.requeueLocked(j, "lease_expired")
	}
}

// NextWake returns the earliest strictly-future instant at which the
// queue's state can change without external input: a backoff ready
// time or a lease expiry. The discrete-event twin uses it to schedule
// wake events; ok is false when no such instant exists.
func (q *Queue) NextWake() (time.Time, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	var t time.Time
	var ok bool
	for _, j := range q.jobs {
		var c time.Time
		switch j.State {
		case Pending:
			c = j.ReadyAt
		case Leased:
			c = j.LeaseExpiry
		default:
			continue
		}
		if !c.After(now) {
			continue
		}
		if !ok || c.Before(t) {
			t, ok = c, true
		}
	}
	return t, ok
}

// Stats returns a snapshot of the queue accounting.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// Jobs returns detached copies of every job, in ID order.
func (q *Queue) Jobs() []Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Job, len(q.jobs))
	for i, j := range q.jobs {
		out[i] = j.clone()
	}
	return out
}

// Job returns a detached copy of one job.
func (q *Queue) Job(id int) (Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.get(id)
	if err != nil {
		return Job{}, err
	}
	return j.clone(), nil
}

// readyEntry orders pending jobs by (ready time, ID).
type readyEntry struct {
	at time.Time
	id int
}

type readyHeap []readyEntry

func (h readyHeap) Len() int { return len(h) }
func (h readyHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}
func (h readyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *readyHeap) Push(x interface{}) { *h = append(*h, x.(readyEntry)) }
func (h *readyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// expiryEntry orders lease deadlines; attempt makes superseded
// entries detectable.
type expiryEntry struct {
	at      time.Time
	id      int
	attempt int
}

type expiryHeap []expiryEntry

func (h expiryHeap) Len() int { return len(h) }
func (h expiryHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].id < h[j].id
}
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(expiryEntry)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
