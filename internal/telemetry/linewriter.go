package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// LineWriter serializes line-oriented progress output from concurrent
// workers: every Write is prefixed with the writing worker's label and
// the elapsed time since the writer was created, and emitted whole, so
// lines from parallel goroutines can never interleave mid-line.
//
// Workers identify themselves with Bind/Unbind (the binding is per
// goroutine); unbound goroutines are labeled "main". Writes should be
// whole lines (as fmt.Fprintf of a \n-terminated format produces); a
// write without a trailing newline is terminated anyway.
type LineWriter struct {
	mu     sync.Mutex
	w      io.Writer
	start  time.Time
	labels map[uint64]string
}

// NewLineWriter wraps w; the elapsed-time prefix is measured from this
// call.
func NewLineWriter(w io.Writer) *LineWriter {
	return &LineWriter{w: w, start: time.Now(), labels: map[uint64]string{}}
}

// Bind labels all subsequent writes from the calling goroutine.
func (lw *LineWriter) Bind(label string) {
	id := gid()
	lw.mu.Lock()
	lw.labels[id] = label
	lw.mu.Unlock()
}

// Unbind removes the calling goroutine's label.
func (lw *LineWriter) Unbind() {
	id := gid()
	lw.mu.Lock()
	delete(lw.labels, id)
	lw.mu.Unlock()
}

// Labeled returns a writer whose lines always carry label, regardless
// of which goroutine writes. Fleet workers use it instead of Bind:
// their HTTP and heartbeat goroutines come and go, so a per-goroutine
// binding would miss most of their output, but the worker's identity
// ("w1", "w2", …) is fixed for the process's life.
func (lw *LineWriter) Labeled(label string) io.Writer {
	return &labeledWriter{lw: lw, label: label}
}

type labeledWriter struct {
	lw    *LineWriter
	label string
}

func (w *labeledWriter) Write(p []byte) (int, error) {
	return w.lw.write(w.label, p)
}

// Write emits p as one or more complete lines prefixed with the
// calling goroutine's bound label ("main" when unbound).
func (lw *LineWriter) Write(p []byte) (int, error) {
	id := gid()
	lw.mu.Lock()
	label, ok := lw.labels[id]
	lw.mu.Unlock()
	if !ok {
		label = "main"
	}
	return lw.write(label, p)
}

// write emits p under an explicit label.
func (lw *LineWriter) write(label string, p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	prefix := fmt.Sprintf("[%s +%.3fs] ", label, time.Since(lw.start).Seconds())

	n := len(p)
	var buf bytes.Buffer
	for len(p) > 0 {
		line := p
		if i := bytes.IndexByte(p, '\n'); i >= 0 {
			line, p = p[:i], p[i+1:]
		} else {
			p = nil
		}
		// bytes.Buffer writes are documented to never return an error.
		buf.WriteString(prefix)
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if _, err := lw.w.Write(buf.Bytes()); err != nil {
		return 0, err
	}
	return n, nil
}

// gid returns the calling goroutine's id, parsed from the runtime
// stack header ("goroutine N [...]"). The format has been stable since
// Go 1.0; this is used only to key progress-log labels, so a parse
// failure degrades to the shared "main" label, never to corruption.
func gid() uint64 {
	var buf [48]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const h = "goroutine "
	if !bytes.HasPrefix(s, []byte(h)) {
		return 0
	}
	var id uint64
	for _, c := range s[len(h):] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
