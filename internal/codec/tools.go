// Package codec implements the vbench video codec: a complete
// block-transform encoder/decoder pair (motion-compensated prediction,
// integer DCT, scalar quantization, adaptive entropy coding, in-loop
// deblocking, and three rate-control modes) whose tool set is fully
// configurable.
//
// One codec with switchable tools is the substrate for all the
// paper's encoder families: the x264-, x265-, and vp9-analogue
// software encoders and the NVENC-/QSV-analogue fixed-function
// encoders are tool configurations of this engine (see the profiles
// and hw sub-packages), so their speed/bitrate/quality differences are
// real algorithmic consequences, not constants.
package codec

import (
	"fmt"

	"vbench/internal/codec/motion"
)

// EntropyKind selects the entropy-coding backend.
type EntropyKind int

// The two entropy backends, mirroring the paper's CAVLC/CABAC split.
const (
	// EntropyGolomb is the variable-length backend (Exp-Golomb codes,
	// CAVLC-analogue): cheap, parallel-friendly, weaker compression.
	EntropyGolomb EntropyKind = iota
	// EntropyArith is the adaptive binary arithmetic backend
	// (CABAC-analogue): strictly sequential, stronger compression.
	EntropyArith
)

// String names the entropy backend.
func (k EntropyKind) String() string {
	switch k {
	case EntropyGolomb:
		return "golomb"
	case EntropyArith:
		return "arith"
	}
	return fmt.Sprintf("entropy(%d)", int(k))
}

// Tools is the feature set of an encoder configuration. Every field
// is a real compression tool with a real compute cost; effort presets
// and encoder families differ only in this struct.
type Tools struct {
	// Name labels the configuration in reports.
	Name string

	// Search selects the integer-pel motion search strategy.
	Search motion.SearchKind
	// SearchRange is the motion search radius in integer pixels.
	SearchRange int
	// SubPel is the refinement depth: 0 integer, 1 half, 2 quarter pel.
	SubPel int
	// MaxRefs is the number of past reference frames searched (≥1).
	MaxRefs int

	// Transform8x8 allows the encoder to choose an 8×8 luma transform
	// per macroblock (better for smooth content).
	Transform8x8 bool
	// AdaptiveQuant modulates the quantizer per macroblock by local
	// activity, spending bits where the eye sees them.
	AdaptiveQuant bool
	// Trellis enables rate-distortion-optimized coefficient level
	// adjustment after quantization.
	Trellis bool
	// Entropy selects the entropy backend.
	Entropy EntropyKind
	// RichContexts uses a larger, position-adaptive context model in
	// the arithmetic backend (HEVC-style); ignored for Golomb.
	RichContexts bool
	// Deblock enables the in-loop deblocking filter.
	Deblock bool
	// RDMode performs full rate-distortion mode decisions (encode
	// both intra and inter candidates) instead of SATD heuristics.
	RDMode bool
	// SceneCut inserts key frames at detected scene changes.
	SceneCut bool
	// SharpInterp replaces bilinear sub-pel interpolation with a
	// 4-tap kernel (HEVC/VP9-class motion compensation): texture
	// survives motion better, shrinking residuals.
	SharpInterp bool
	// Intra4x4 enables per-4×4-block intra prediction inside intra
	// macroblocks (directional prediction at fine granularity), the
	// tool behind the newer codecs' large wins on text and screen
	// content.
	Intra4x4 bool
	// Denoise applies an encoder-side spatial pre-filter to the source
	// (strength 0–2) before encoding — the optional denoising step the
	// paper describes in Section 2.1: high-frequency noise costs many
	// bits to preserve, so removing some of it improves compressibility
	// at a small fidelity cost. Purely an encoder decision; the
	// bitstream is unaffected.
	Denoise int
	// QPGranularity quantizes the frame-level QP to multiples of this
	// value (0 or 1 = full precision). Fixed-function encoders adapt
	// their quantizer in coarse steps, which is why the paper finds
	// GPUs "struggle to degrade quality and bitrate gracefully" on
	// low-entropy content: the quality-per-QP slope is steep there,
	// so a coarse step overshoots the target quality and wastes bits.
	QPGranularity int
}

// Validate reports whether the tool set is coherent.
func (t Tools) Validate() error {
	switch {
	case t.SearchRange < 0 || t.SearchRange > 64:
		return fmt.Errorf("codec: search range %d out of [0,64]", t.SearchRange)
	case t.Denoise < 0 || t.Denoise > 2:
		return fmt.Errorf("codec: denoise strength %d out of [0,2]", t.Denoise)
	case t.SubPel < 0 || t.SubPel > 2:
		return fmt.Errorf("codec: subpel depth %d out of [0,2]", t.SubPel)
	case t.MaxRefs < 1 || t.MaxRefs > 8:
		return fmt.Errorf("codec: reference count %d out of [1,8]", t.MaxRefs)
	case t.Entropy != EntropyGolomb && t.Entropy != EntropyArith:
		return fmt.Errorf("codec: unknown entropy backend %d", int(t.Entropy))
	}
	return nil
}

// Preset is an effort level on the canonical ladder, mirroring
// libx264's named presets. Higher presets search more of the encoding
// space: better compression at the same quality, more computation.
type Preset int

// The preset ladder.
const (
	PresetUltraFast Preset = iota
	PresetVeryFast
	PresetFast
	PresetMedium
	PresetSlow
	PresetVerySlow
	PresetPlacebo
	NumPresets
)

var presetNames = [NumPresets]string{
	"ultrafast", "veryfast", "fast", "medium", "slow", "veryslow", "placebo",
}

// String names the preset.
func (p Preset) String() string {
	if p < 0 || p >= NumPresets {
		return fmt.Sprintf("preset(%d)", int(p))
	}
	return presetNames[p]
}

// ParsePreset maps a name to a preset.
func ParsePreset(name string) (Preset, error) {
	for i, n := range presetNames {
		if n == name {
			return Preset(i), nil
		}
	}
	return 0, fmt.Errorf("codec: unknown preset %q", name)
}

// BaselineTools returns the tool set of the reference software encoder
// (the libx264 analogue) at the given preset.
func BaselineTools(p Preset) Tools {
	t := Tools{Name: "swx264-" + p.String(), MaxRefs: 1, Entropy: EntropyGolomb}
	switch p {
	case PresetUltraFast:
		t.Search = motion.SearchDiamond
		t.SearchRange = 8
		t.SubPel = 0
	case PresetVeryFast:
		t.Search = motion.SearchDiamond
		t.SearchRange = 12
		t.SubPel = 1
		t.Deblock = true
	case PresetFast:
		t.Search = motion.SearchHex
		t.SearchRange = 16
		t.SubPel = 1
		t.Deblock = true
		t.Entropy = EntropyArith
	case PresetMedium:
		t.Search = motion.SearchHex
		t.SearchRange = 16
		t.SubPel = 2
		t.Deblock = true
		t.Entropy = EntropyArith
		t.AdaptiveQuant = true
	case PresetSlow:
		t.Search = motion.SearchHex
		t.SearchRange = 24
		t.SubPel = 2
		t.MaxRefs = 2
		t.Deblock = true
		t.Entropy = EntropyArith
		t.AdaptiveQuant = true
		t.Transform8x8 = true
		t.Trellis = true
	case PresetVerySlow:
		t.Search = motion.SearchFull
		t.SearchRange = 16
		t.SubPel = 2
		t.MaxRefs = 3
		t.Deblock = true
		t.Entropy = EntropyArith
		t.AdaptiveQuant = true
		t.Transform8x8 = true
		t.Trellis = true
		t.RDMode = true
	case PresetPlacebo:
		t.Search = motion.SearchFull
		t.SearchRange = 24
		t.SubPel = 2
		t.MaxRefs = 4
		t.Deblock = true
		t.Entropy = EntropyArith
		t.AdaptiveQuant = true
		t.Transform8x8 = true
		t.Trellis = true
		t.RDMode = true
	default:
		panic(fmt.Sprintf("codec: invalid preset %d", int(p)))
	}
	t.SceneCut = p >= PresetVeryFast
	return t
}
