// Package a exercises detorder's map-iteration-order checks.
package a

import (
	"fmt"
	"io"
	"sort"

	"lint.test/telemetry"
)

func directPrint(m map[string]int) {
	for k, v := range m { // want `iteration over map m reaches output sink fmt.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func writerSink(m map[string]int, w io.Writer) {
	for k := range m { // want `reaches output sink`
		w.Write([]byte(k))
	}
}

func spanArgSink(m map[string]int, sp *telemetry.Span) {
	for k, v := range m { // want `reaches output sink`
		sp.Arg(k, v)
	}
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map m is ranged into slice keys which is never sorted`
		keys = append(keys, k)
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sliceRange(xs []string) {
	for _, x := range xs {
		fmt.Println(x)
	}
}

func localAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressed(m map[string]int) {
	//lint:ignore detorder order does not matter for debug dumps
	for k := range m {
		fmt.Println(k)
	}
}
